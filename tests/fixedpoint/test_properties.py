"""Property-based tests of the fixed-point layer (hypothesis).

Cover the contracts the bit-accurate PL datapath relies on: saturate/wrap
keep every representation inside the declared word length, quantization error
is bounded by the format resolution, the arithmetic primitives are closed
under the declared Q-format, and representations round-trip losslessly.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fixedpoint import FxArray, QFormat
from repro.fixedpoint.arithmetic import fx_add, fx_mac, fx_mul, fx_relu, fx_sub
from repro.fixedpoint.qformat import OverflowMode


@st.composite
def qformats(draw, max_word_length: int = 32):
    """An arbitrary valid QFormat (word length 4..32, any fraction length)."""

    word_length = draw(st.integers(min_value=4, max_value=max_word_length))
    fraction_bits = draw(st.integers(min_value=0, max_value=word_length - 1))
    return QFormat(word_length, fraction_bits)


@st.composite
def format_and_values(draw, size: int = 8):
    """A format plus a batch of real values within its representable range."""

    fmt = draw(qformats())
    values = draw(
        st.lists(
            st.floats(
                min_value=fmt.min_value, max_value=fmt.max_value,
                allow_nan=False, allow_infinity=False,
            ),
            min_size=1,
            max_size=size,
        )
    )
    return fmt, np.asarray(values)


@st.composite
def format_and_raws(draw, size: int = 8):
    """A format plus a batch of integer representations within its range."""

    fmt = draw(qformats())
    raws = draw(
        st.lists(
            st.integers(min_value=fmt.min_int, max_value=fmt.max_int),
            min_size=1,
            max_size=size,
        )
    )
    return fmt, np.asarray(raws, dtype=np.int64)


any_floats = st.floats(allow_nan=False, allow_infinity=False, width=32)


class TestQuantization:
    @settings(max_examples=100, deadline=None)
    @given(format_and_values())
    def test_quantize_dequantize_error_within_resolution(self, fmt_values):
        fmt, values = fmt_values
        error = np.abs(fmt.quantize(values) - values)
        assert np.all(error <= 2.0 ** -fmt.fraction_bits)

    @settings(max_examples=100, deadline=None)
    @given(qformats(), st.lists(any_floats, min_size=1, max_size=8))
    def test_saturate_stays_within_word_length(self, fmt, values):
        fixed = fmt.to_fixed(np.asarray(values), mode=OverflowMode.SATURATE)
        assert np.all(fixed >= fmt.min_int)
        assert np.all(fixed <= fmt.max_int)

    @settings(max_examples=100, deadline=None)
    @given(qformats(), st.lists(any_floats, min_size=1, max_size=8))
    def test_wrap_stays_within_word_length(self, fmt, values):
        fixed = fmt.to_fixed(np.asarray(values), mode=OverflowMode.WRAP)
        assert np.all(fixed >= fmt.min_int)
        assert np.all(fixed <= fmt.max_int)

    @settings(max_examples=50, deadline=None)
    @given(qformats())
    def test_saturate_clamps_out_of_range_to_the_exact_bounds(self, fmt):
        above = fmt.max_value * 4.0 + 1.0
        below = fmt.min_value * 4.0 - 1.0
        assert fmt.to_fixed(above).item() == fmt.max_int
        assert fmt.to_fixed(below).item() == fmt.min_int

    @settings(max_examples=100, deadline=None)
    @given(format_and_raws())
    def test_representation_round_trips_exactly(self, fmt_raws):
        fmt, raws = fmt_raws
        # int -> float -> int is lossless: every representation is a dyadic
        # rational that float64 stores exactly for word lengths <= 32.
        assert np.array_equal(fmt.to_fixed(fmt.to_float(raws)), raws)

    @settings(max_examples=100, deadline=None)
    @given(format_and_values())
    def test_quantize_is_idempotent(self, fmt_values):
        fmt, values = fmt_values
        once = fmt.quantize(values)
        assert np.array_equal(fmt.quantize(once), once)


class TestArithmeticClosure:
    @settings(max_examples=100, deadline=None)
    @given(format_and_raws(), st.sampled_from([OverflowMode.SATURATE, OverflowMode.WRAP]))
    def test_add_closed_under_format(self, fmt_raws, mode):
        fmt, raws = fmt_raws
        result = fx_add(raws, raws[::-1].copy(), fmt, mode)
        assert np.all(result >= fmt.min_int)
        assert np.all(result <= fmt.max_int)

    @settings(max_examples=100, deadline=None)
    @given(format_and_raws(), st.sampled_from([OverflowMode.SATURATE, OverflowMode.WRAP]))
    def test_mul_closed_under_format(self, fmt_raws, mode):
        fmt, raws = fmt_raws
        result = fx_mul(raws, raws[::-1].copy(), fmt, mode)
        assert np.all(result >= fmt.min_int)
        assert np.all(result <= fmt.max_int)

    @settings(max_examples=100, deadline=None)
    @given(format_and_raws())
    def test_mac_closed_under_format(self, fmt_raws):
        fmt, raws = fmt_raws
        result = fx_mac(raws, raws, raws[::-1].copy(), fmt)
        assert np.all(result >= fmt.min_int)
        assert np.all(result <= fmt.max_int)

    @settings(max_examples=100, deadline=None)
    @given(format_and_raws())
    def test_add_commutes(self, fmt_raws):
        fmt, raws = fmt_raws
        other = raws[::-1].copy()
        assert np.array_equal(fx_add(raws, other, fmt), fx_add(other, raws, fmt))

    @settings(max_examples=100, deadline=None)
    @given(format_and_raws())
    def test_mul_by_one_is_identity(self, fmt_raws):
        fmt, raws = fmt_raws
        one = np.full_like(raws, fmt.scale)
        # (x * 2^f) >> f == x exactly, including negatives (arithmetic shift),
        # provided 1.0 itself is representable in the format.
        if fmt.scale <= fmt.max_int:
            assert np.array_equal(fx_mul(raws, one, fmt), raws)

    @settings(max_examples=100, deadline=None)
    @given(format_and_raws())
    def test_sub_self_is_zero_and_relu_clamps(self, fmt_raws):
        fmt, raws = fmt_raws
        assert np.all(fx_sub(raws, raws, fmt) == 0)
        relu = fx_relu(raws, fmt)
        assert np.all(relu >= 0)
        assert np.array_equal(fx_relu(relu, fmt), relu)


class TestFxArray:
    @settings(max_examples=100, deadline=None)
    @given(format_and_values())
    def test_from_float_round_trip_error_within_resolution(self, fmt_values):
        fmt, values = fmt_values
        arr = FxArray.from_float(values, fmt)
        assert float(np.max(np.abs(arr.to_float() - values))) <= 2.0 ** -fmt.fraction_bits

    @settings(max_examples=100, deadline=None)
    @given(format_and_raws())
    def test_astype_to_wider_format_is_lossless(self, fmt_raws):
        fmt, raws = fmt_raws
        arr = FxArray(raws, fmt)
        wider = QFormat(
            min(fmt.word_length + 8, 48), fmt.fraction_bits + 4
        )
        # More integer bits *and* more fraction bits: every value survives.
        assert wider.integer_bits >= fmt.integer_bits
        assert np.array_equal(arr.astype(wider).to_float(), arr.to_float())

    @settings(max_examples=100, deadline=None)
    @given(format_and_raws())
    def test_operator_add_matches_primitive(self, fmt_raws):
        fmt, raws = fmt_raws
        a = FxArray(raws, fmt)
        b = FxArray(raws[::-1].copy(), fmt)
        assert np.array_equal((a + b).raw, fx_add(a.raw, b.raw, fmt))

    @settings(max_examples=100, deadline=None)
    @given(format_and_raws())
    def test_negation_is_involutive_away_from_min_int(self, fmt_raws):
        fmt, raws = fmt_raws
        safe = np.maximum(raws, fmt.min_int + 1)
        arr = FxArray(safe, fmt)
        assert np.array_equal((-(-arr)).raw, safe)

"""Tests for the optimisers and learning-rate schedulers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import SGD, Adam, CosineAnnealingLR, MultiStepLR, StepLR, Tensor
from repro.nn.layers import Parameter


def _quadratic_problem(start=5.0):
    """Return a parameter initialised at ``start`` whose optimum is 0."""

    return Parameter(np.array([start]))


def _quadratic_step(param):
    loss = (param * param).sum()
    loss.backward()
    return loss.item()


class TestSGD:
    def test_plain_gradient_descent_step(self):
        p = _quadratic_problem(2.0)
        opt = SGD([p], lr=0.1, momentum=0.0, weight_decay=0.0)
        _quadratic_step(p)
        opt.step()
        # x - lr * 2x = 2 - 0.1*4 = 1.6
        assert p.data[0] == pytest.approx(1.6)

    def test_weight_decay_added(self):
        p = _quadratic_problem(1.0)
        opt = SGD([p], lr=0.1, momentum=0.0, weight_decay=1.0)
        _quadratic_step(p)
        opt.step()
        # grad = 2x + wd*x = 3 -> 1 - 0.3
        assert p.data[0] == pytest.approx(0.7)

    def test_momentum_accumulates(self):
        p = _quadratic_problem(1.0)
        opt = SGD([p], lr=0.1, momentum=0.9, weight_decay=0.0)
        for _ in range(2):
            opt.zero_grad()
            _quadratic_step(p)
            opt.step()
        # After two steps with momentum the parameter moved further than two
        # plain steps would have.
        plain = 1.0
        for _ in range(2):
            plain -= 0.1 * 2 * plain
        assert p.data[0] < plain

    def test_converges_on_quadratic(self):
        p = _quadratic_problem(3.0)
        opt = SGD([p], lr=0.1, momentum=0.9, weight_decay=0.0)
        for _ in range(200):
            opt.zero_grad()
            _quadratic_step(p)
            opt.step()
        assert abs(p.data[0]) < 1e-3

    def test_skips_parameters_without_grad(self):
        p = Parameter(np.array([1.0]))
        opt = SGD([p], lr=0.1)
        opt.step()  # no grad yet: should be a no-op, not an error
        assert p.data[0] == 1.0

    def test_empty_parameter_list_rejected(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_nesterov_differs_from_plain_momentum(self):
        p1, p2 = _quadratic_problem(1.0), _quadratic_problem(1.0)
        o1 = SGD([p1], lr=0.1, momentum=0.9, weight_decay=0.0, nesterov=False)
        o2 = SGD([p2], lr=0.1, momentum=0.9, weight_decay=0.0, nesterov=True)
        for opt, p in ((o1, p1), (o2, p2)):
            for _ in range(3):
                opt.zero_grad()
                _quadratic_step(p)
                opt.step()
        assert p1.data[0] != pytest.approx(p2.data[0])


class TestAdam:
    def test_converges_on_quadratic(self):
        p = _quadratic_problem(3.0)
        opt = Adam([p], lr=0.1)
        for _ in range(200):
            opt.zero_grad()
            _quadratic_step(p)
            opt.step()
        assert abs(p.data[0]) < 1e-2

    def test_first_step_size_close_to_lr(self):
        p = _quadratic_problem(1.0)
        opt = Adam([p], lr=0.01)
        _quadratic_step(p)
        opt.step()
        assert p.data[0] == pytest.approx(1.0 - 0.01, rel=1e-3)


class TestSchedulers:
    def test_multistep_matches_paper_recipe(self):
        p = _quadratic_problem()
        opt = SGD([p], lr=0.01)
        sched = MultiStepLR(opt, milestones=(100, 150), gamma=0.1)
        lrs = {}
        for epoch in range(1, 201):
            lrs[epoch] = opt.lr
            sched.step()
        assert lrs[50] == pytest.approx(0.01)
        assert lrs[100] == pytest.approx(0.01)  # lr drops after the step at 100
        assert lrs[101] == pytest.approx(0.001)
        assert lrs[151] == pytest.approx(0.0001)
        assert lrs[200] == pytest.approx(0.0001)

    def test_step_lr(self):
        p = _quadratic_problem()
        opt = SGD([p], lr=1.0)
        sched = StepLR(opt, step_size=2, gamma=0.5)
        values = []
        for _ in range(4):
            sched.step()
            values.append(opt.lr)
        assert values == [1.0, 0.5, 0.5, 0.25]

    def test_cosine_annealing_endpoints(self):
        p = _quadratic_problem()
        opt = SGD([p], lr=1.0)
        sched = CosineAnnealingLR(opt, t_max=10, eta_min=0.0)
        assert sched.get_lr(0) == pytest.approx(1.0)
        assert sched.get_lr(10) == pytest.approx(0.0, abs=1e-12)
        assert sched.get_lr(5) == pytest.approx(0.5)

    def test_cosine_monotone_decreasing(self):
        p = _quadratic_problem()
        opt = SGD([p], lr=1.0)
        sched = CosineAnnealingLR(opt, t_max=20)
        values = [sched.get_lr(e) for e in range(21)]
        assert all(a >= b for a, b in zip(values, values[1:]))

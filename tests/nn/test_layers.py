"""Tests for the Module system and the standard layers."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.nn import Tensor


class TestModuleSystem:
    def _small_net(self):
        return nn.Sequential(
            nn.Conv2d(3, 4, 3, 1, 1),
            nn.BatchNorm2d(4),
            nn.ReLU(),
            nn.GlobalAvgPool2d(),
            nn.Linear(4, 2),
        )

    def test_parameters_discovered_recursively(self):
        net = self._small_net()
        names = [n for n, _ in net.named_parameters()]
        # conv weight, bn gamma/beta, linear weight/bias
        assert len(names) == 5
        assert any("m0" in n for n in names) and any("m4" in n for n in names)

    def test_num_parameters_counts_scalars(self):
        net = self._small_net()
        expected = 4 * 3 * 9 + 4 + 4 + 2 * 4 + 2
        assert net.num_parameters() == expected
        assert net.parameter_bytes() == expected * 4

    def test_named_buffers_include_running_stats(self):
        net = self._small_net()
        buffer_names = [n for n, _ in net.named_buffers()]
        assert any("running_mean" in n for n in buffer_names)
        assert any("running_var" in n for n in buffer_names)

    def test_train_eval_propagates(self):
        net = self._small_net()
        net.eval()
        assert all(not m.training for m in net.modules())
        net.train()
        assert all(m.training for m in net.modules())

    def test_zero_grad_clears_all(self, rng):
        net = self._small_net()
        out = net(Tensor(rng.normal(size=(2, 3, 8, 8))))
        out.sum().backward()
        assert any(p.grad is not None for p in net.parameters())
        net.zero_grad()
        assert all(p.grad is None for p in net.parameters())

    def test_state_dict_roundtrip(self, rng):
        net1 = self._small_net()
        net2 = self._small_net()
        # Nets start different (random init with different default seeds may
        # coincide, so force a difference).
        net2.parameters()[0].data += 1.0
        state = net1.state_dict()
        net2.load_state_dict(state)
        for p1, p2 in zip(net1.parameters(), net2.parameters()):
            np.testing.assert_allclose(p1.data, p2.data)

    def test_state_dict_contains_buffers(self):
        net = self._small_net()
        state = net.state_dict()
        assert any("running_mean" in k for k in state)

    def test_forward_not_implemented_on_base(self):
        with pytest.raises(NotImplementedError):
            nn.Module().forward(None)


class TestSequential:
    def test_len_getitem_iter(self):
        seq = nn.Sequential(nn.ReLU(), nn.ReLU())
        assert len(seq) == 2
        assert isinstance(seq[0], nn.ReLU)
        assert len(list(iter(seq))) == 2

    def test_append(self):
        seq = nn.Sequential(nn.ReLU())
        seq.append(nn.Flatten())
        assert len(seq) == 2

    def test_forward_order(self):
        seq = nn.Sequential(nn.Flatten(), nn.Linear(4, 3))
        out = seq(Tensor(np.ones((2, 2, 2))))
        assert out.shape == (2, 3)


class TestConvLayer:
    def test_shapes_and_default_no_bias(self, rng):
        conv = nn.Conv2d(3, 8, 3, stride=1, padding=1, rng=rng)
        assert conv.bias is None
        assert conv.weight.shape == (8, 3, 3, 3)
        out = conv(Tensor(rng.normal(size=(2, 3, 10, 10))))
        assert out.shape == (2, 8, 10, 10)

    def test_bias_option(self, rng):
        conv = nn.Conv2d(3, 8, bias=True, rng=rng)
        assert conv.bias is not None and conv.bias.shape == (8,)

    def test_kaiming_init_scale(self):
        rng = np.random.default_rng(0)
        conv = nn.Conv2d(16, 16, 3, rng=rng)
        std = conv.weight.data.std()
        expected = np.sqrt(2.0 / (16 * 9))
        assert std == pytest.approx(expected, rel=0.2)


class TestBatchNormLayer:
    def test_training_vs_eval_paths_differ(self, rng):
        bn = nn.BatchNorm2d(4)
        x = Tensor(rng.normal(loc=3.0, size=(8, 4, 5, 5)))
        train_out = bn(x)
        bn.eval()
        eval_out = bn(x)
        assert not np.allclose(train_out.data, eval_out.data)

    def test_buffers_are_shared_references(self, rng):
        bn = nn.BatchNorm2d(2)
        before = bn.running_mean.copy()
        bn(Tensor(rng.normal(loc=5.0, size=(4, 2, 3, 3))))
        assert not np.allclose(bn.running_mean, before)


class TestLinearAndMisc:
    def test_linear_shapes(self, rng):
        lin = nn.Linear(10, 5, rng=rng)
        out = lin(Tensor(rng.normal(size=(3, 10))))
        assert out.shape == (3, 5)

    def test_linear_no_bias(self, rng):
        lin = nn.Linear(4, 2, bias=False, rng=rng)
        assert lin.bias is None

    def test_flatten(self):
        out = nn.Flatten()(Tensor(np.zeros((2, 3, 4))))
        assert out.shape == (2, 12)

    def test_identity_passthrough(self):
        x = Tensor(np.arange(5.0))
        assert nn.Identity()(x) is x

    def test_avg_pool_layer(self):
        out = nn.AvgPool2d(2)(Tensor(np.ones((1, 1, 4, 4))))
        assert out.shape == (1, 1, 2, 2)

    def test_global_avg_pool_layer(self):
        out = nn.GlobalAvgPool2d()(Tensor(np.ones((2, 5, 4, 4))))
        assert out.shape == (2, 5)


class TestEndToEndGradientFlow:
    def test_small_cnn_gradients_nonzero(self, rng):
        net = nn.Sequential(
            nn.Conv2d(3, 4, rng=rng),
            nn.BatchNorm2d(4),
            nn.ReLU(),
            nn.Conv2d(4, 4, rng=rng),
            nn.BatchNorm2d(4),
            nn.ReLU(),
            nn.GlobalAvgPool2d(),
            nn.Linear(4, 3, rng=rng),
        )
        x = Tensor(rng.normal(size=(4, 3, 8, 8)))
        loss = nn.CrossEntropyLoss()(net(x), np.array([0, 1, 2, 0]))
        loss.backward()
        for name, p in net.named_parameters():
            assert p.grad is not None, f"no gradient for {name}"
            assert np.any(p.grad != 0) or "beta" in name or "bias" in name

"""Tests for the im2col / col2im convolution lowering."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.im2col import col2im, conv_output_size, im2col


class TestConvOutputSize:
    @pytest.mark.parametrize(
        "size,kernel,stride,padding,expected",
        [
            (32, 3, 1, 1, 32),
            (32, 3, 2, 1, 16),
            (8, 3, 1, 1, 8),
            (8, 3, 1, 0, 6),
            (5, 5, 1, 0, 1),
            (7, 3, 2, 0, 3),
        ],
    )
    def test_known_sizes(self, size, kernel, stride, padding, expected):
        assert conv_output_size(size, kernel, stride, padding) == expected


class TestIm2Col:
    def test_output_shape(self):
        x = np.arange(2 * 3 * 5 * 5, dtype=np.float64).reshape(2, 3, 5, 5)
        cols = im2col(x, 3, 3, stride=1, padding=1)
        assert cols.shape == (2 * 5 * 5, 3 * 9)

    def test_identity_kernel_recovers_input(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(1, 2, 4, 4))
        cols = im2col(x, 1, 1, stride=1, padding=0)
        np.testing.assert_allclose(cols.reshape(4, 4, 2).transpose(2, 0, 1), x[0])

    def test_manual_patch_values(self):
        x = np.arange(16, dtype=np.float64).reshape(1, 1, 4, 4)
        cols = im2col(x, 3, 3, stride=1, padding=0)
        # First patch is the top-left 3x3 window.
        np.testing.assert_allclose(cols[0], x[0, 0, :3, :3].reshape(-1))
        # Last patch is the bottom-right window.
        np.testing.assert_allclose(cols[-1], x[0, 0, 1:, 1:].reshape(-1))

    def test_padding_adds_zeros(self):
        x = np.ones((1, 1, 2, 2))
        cols = im2col(x, 3, 3, stride=1, padding=1)
        # The corner patch should contain 5 zeros (padded area) and 4 ones.
        assert cols[0].sum() == 4

    def test_strided_patches(self):
        x = np.arange(36, dtype=np.float64).reshape(1, 1, 6, 6)
        cols = im2col(x, 2, 2, stride=2, padding=0)
        assert cols.shape == (9, 4)
        np.testing.assert_allclose(cols[0], [0, 1, 6, 7])
        np.testing.assert_allclose(cols[1], [2, 3, 8, 9])

    def test_conv_via_im2col_matches_direct(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(2, 3, 6, 6))
        w = rng.normal(size=(4, 3, 3, 3))
        cols = im2col(x, 3, 3, stride=1, padding=1)
        out = (cols @ w.reshape(4, -1).T).reshape(2, 6, 6, 4).transpose(0, 3, 1, 2)
        # Direct (slow) convolution for reference.
        padded = np.pad(x, ((0, 0), (0, 0), (1, 1), (1, 1)))
        ref = np.zeros_like(out)
        for n in range(2):
            for o in range(4):
                for i in range(6):
                    for j in range(6):
                        ref[n, o, i, j] = np.sum(padded[n, :, i : i + 3, j : j + 3] * w[o])
        np.testing.assert_allclose(out, ref, rtol=1e-10, atol=1e-10)


class TestIm2ColDtypeOut:
    """The fused gather+cast path feeding the split-limb GEMM."""

    def test_dtype_casts_in_one_copy(self):
        x = np.arange(2 * 3 * 5 * 5, dtype=np.int64).reshape(2, 3, 5, 5)
        cols = im2col(x, 3, 3, stride=1, padding=1, dtype=np.float64)
        assert cols.dtype == np.float64
        np.testing.assert_array_equal(
            cols, im2col(x, 3, 3, stride=1, padding=1).astype(np.float64)
        )

    def test_out_buffer_is_filled_and_returned(self):
        x = np.arange(1 * 2 * 4 * 4, dtype=np.int64).reshape(1, 2, 4, 4)
        buf = np.full((16, 18), -1, dtype=np.float64)
        cols = im2col(x, 3, 3, stride=1, padding=1, out=buf)
        assert cols is buf
        np.testing.assert_array_equal(buf, im2col(x, 3, 3, stride=1, padding=1))

    def test_out_reuse_across_chunks_matches_fresh_allocation(self):
        rng = np.random.default_rng(2)
        buf = np.empty((16, 18), dtype=np.float64)
        for _ in range(3):
            x = rng.normal(size=(1, 2, 4, 4))
            got = im2col(x, 3, 3, stride=1, padding=1, out=buf)
            np.testing.assert_array_equal(got, im2col(x, 3, 3, stride=1, padding=1))

    def test_out_shape_mismatch_raises(self):
        x = np.zeros((1, 2, 4, 4))
        with pytest.raises(ValueError, match="shape"):
            im2col(x, 3, 3, stride=1, padding=1, out=np.empty((15, 18)))

    def test_out_dtype_conflict_raises(self):
        x = np.zeros((1, 2, 4, 4))
        buf = np.empty((16, 18), dtype=np.float32)
        with pytest.raises(ValueError, match="dtype"):
            im2col(x, 3, 3, stride=1, padding=1, dtype=np.float64, out=buf)

    def test_non_contiguous_out_raises(self):
        x = np.zeros((1, 2, 4, 4))
        buf = np.empty((16, 36), dtype=np.float64)[:, ::2]
        with pytest.raises(ValueError, match="contiguous"):
            im2col(x, 3, 3, stride=1, padding=1, out=buf)

    def test_default_path_unchanged(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        cols = im2col(x, 3, 3, stride=1, padding=0)
        assert cols.dtype == np.float32


class TestCol2Im:
    def test_roundtrip_counts_overlaps(self):
        # col2im(im2col(x)) multiplies each pixel by the number of windows
        # covering it; for a kernel of 1 the round trip is exact.
        x = np.arange(8.0).reshape(1, 2, 2, 2)
        cols = im2col(x, 1, 1, stride=1, padding=0)
        back = col2im(cols, (1, 2, 2, 2), 1, 1, stride=1, padding=0)
        np.testing.assert_allclose(back, x)

    def test_overlap_accumulation(self):
        x = np.ones((1, 1, 3, 3))
        cols = im2col(x, 3, 3, stride=1, padding=1)
        back = col2im(cols, (1, 1, 3, 3), 3, 3, stride=1, padding=1)
        # The centre pixel is covered by all 9 windows.
        assert back[0, 0, 1, 1] == pytest.approx(9.0)
        # A corner pixel is covered by 4 windows.
        assert back[0, 0, 0, 0] == pytest.approx(4.0)

    @given(st.integers(1, 3), st.integers(3, 6), st.integers(0, 1), st.integers(1, 2))
    @settings(max_examples=20, deadline=None)
    def test_shapes_consistent(self, channels, size, padding, stride):
        x = np.random.default_rng(0).normal(size=(1, channels, size, size))
        out_size = conv_output_size(size, 3, stride, padding)
        if out_size <= 0:
            return
        cols = im2col(x, 3, 3, stride=stride, padding=padding)
        assert cols.shape == (out_size * out_size, channels * 9)
        back = col2im(cols, x.shape, 3, 3, stride=stride, padding=padding)
        assert back.shape == x.shape

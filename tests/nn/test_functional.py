"""Tests for the differentiable NN primitives (conv, BN, pooling, losses)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import Tensor
from repro.nn import functional as F
from repro.nn.layers import Parameter


def _numeric_grad(fn, array, idx, eps=1e-6):
    orig = array[idx]
    array[idx] = orig + eps
    fp = fn()
    array[idx] = orig - eps
    fm = fn()
    array[idx] = orig
    return (fp - fm) / (2 * eps)


class TestConv2d:
    def test_output_shape_stride1(self, rng):
        x = Tensor(rng.normal(size=(2, 3, 8, 8)))
        w = Tensor(rng.normal(size=(5, 3, 3, 3)))
        out = F.conv2d(x, w, stride=1, padding=1)
        assert out.shape == (2, 5, 8, 8)

    def test_output_shape_stride2(self, rng):
        x = Tensor(rng.normal(size=(1, 4, 8, 8)))
        w = Tensor(rng.normal(size=(8, 4, 3, 3)))
        out = F.conv2d(x, w, stride=2, padding=1)
        assert out.shape == (1, 8, 4, 4)

    def test_channel_mismatch_raises(self, rng):
        x = Tensor(rng.normal(size=(1, 3, 4, 4)))
        w = Tensor(rng.normal(size=(2, 4, 3, 3)))
        with pytest.raises(ValueError, match="channel mismatch"):
            F.conv2d(x, w)

    def test_identity_kernel(self):
        x = Tensor(np.arange(16.0).reshape(1, 1, 4, 4))
        w = np.zeros((1, 1, 3, 3))
        w[0, 0, 1, 1] = 1.0
        out = F.conv2d(x, Tensor(w), stride=1, padding=1)
        np.testing.assert_allclose(out.data, x.data)

    def test_bias_added_per_channel(self, rng):
        x = Tensor(np.zeros((1, 1, 2, 2)))
        w = Tensor(np.zeros((3, 1, 3, 3)))
        b = Tensor(np.array([1.0, 2.0, 3.0]))
        out = F.conv2d(x, w, b, padding=1)
        for c in range(3):
            np.testing.assert_allclose(out.data[0, c], np.full((2, 2), c + 1.0))

    def test_weight_gradient_matches_numeric(self, rng):
        x = Tensor(rng.normal(size=(2, 2, 5, 5)), requires_grad=True)
        w = Parameter(rng.normal(size=(3, 2, 3, 3)) * 0.1)
        b = Parameter(np.zeros(3))

        def loss_value():
            out = F.conv2d(x, w, b, stride=1, padding=1)
            return float((out.data ** 2).sum())

        out = F.conv2d(x, w, b, stride=1, padding=1)
        (out * out).sum().backward()

        for tensor, idx in [(w, (1, 0, 2, 1)), (x, (0, 1, 2, 3)), (b, (2,))]:
            numeric = _numeric_grad(loss_value, tensor.data, idx)
            assert tensor.grad[idx] == pytest.approx(numeric, rel=1e-4, abs=1e-6)

    def test_strided_gradient_matches_numeric(self, rng):
        x = Tensor(rng.normal(size=(1, 2, 6, 6)), requires_grad=True)
        w = Parameter(rng.normal(size=(2, 2, 3, 3)) * 0.1)

        def loss_value():
            return float((F.conv2d(x, w, stride=2, padding=1).data ** 2).sum())

        out = F.conv2d(x, w, stride=2, padding=1)
        (out * out).sum().backward()
        idx = (1, 1, 0, 2)
        assert w.grad[idx] == pytest.approx(_numeric_grad(loss_value, w.data, idx), rel=1e-4)


class TestBatchNorm:
    def test_training_normalises_batch(self, rng):
        x = Tensor(rng.normal(loc=5.0, scale=3.0, size=(8, 4, 6, 6)))
        gamma = Parameter(np.ones(4))
        beta = Parameter(np.zeros(4))
        running_mean = np.zeros(4)
        running_var = np.ones(4)
        out = F.batch_norm2d(x, gamma, beta, running_mean, running_var, training=True)
        assert abs(out.data.mean()) < 1e-6
        assert out.data.std() == pytest.approx(1.0, rel=1e-2)

    def test_running_stats_updated(self, rng):
        x = Tensor(rng.normal(loc=2.0, size=(16, 3, 4, 4)))
        gamma, beta = Parameter(np.ones(3)), Parameter(np.zeros(3))
        running_mean = np.zeros(3)
        running_var = np.ones(3)
        F.batch_norm2d(x, gamma, beta, running_mean, running_var, training=True, momentum=0.5)
        assert np.all(running_mean > 0.5)

    def test_eval_uses_running_stats(self, rng):
        x = Tensor(rng.normal(size=(4, 2, 3, 3)))
        gamma, beta = Parameter(np.full(2, 2.0)), Parameter(np.full(2, 1.0))
        running_mean = np.zeros(2)
        running_var = np.ones(2)
        out = F.batch_norm2d(x, gamma, beta, running_mean, running_var, training=False, eps=0.0)
        np.testing.assert_allclose(out.data, 2.0 * x.data + 1.0, rtol=1e-10)

    def test_gamma_beta_gradients(self, rng):
        x = Tensor(rng.normal(size=(4, 3, 4, 4)), requires_grad=True)
        gamma = Parameter(np.ones(3))
        beta = Parameter(np.zeros(3))
        rm, rv = np.zeros(3), np.ones(3)

        def loss_value():
            out = F.batch_norm2d(x, gamma, beta, rm.copy(), rv.copy(), training=True)
            return float((out.data ** 2).sum())

        out = F.batch_norm2d(x, gamma, beta, rm.copy(), rv.copy(), training=True)
        (out * out).sum().backward()
        for tensor, idx in [(gamma, (1,)), (beta, (2,)), (x, (1, 2, 0, 3))]:
            numeric = _numeric_grad(loss_value, tensor.data, idx)
            assert tensor.grad[idx] == pytest.approx(numeric, rel=1e-3, abs=1e-5)


class TestPooling:
    def test_global_avg_pool_shape_and_value(self):
        x = Tensor(np.ones((2, 3, 4, 4)) * 2.0)
        out = F.global_avg_pool2d(x)
        assert out.shape == (2, 3)
        np.testing.assert_allclose(out.data, 2.0)

    def test_avg_pool_values(self):
        x = Tensor(np.arange(16.0).reshape(1, 1, 4, 4))
        out = F.avg_pool2d(x, 2)
        np.testing.assert_allclose(out.data[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_avg_pool_requires_divisible_size(self):
        with pytest.raises(ValueError):
            F.avg_pool2d(Tensor(np.zeros((1, 1, 5, 5))), 2)

    def test_max_pool_values(self):
        x = Tensor(np.arange(16.0).reshape(1, 1, 4, 4))
        out = F.max_pool2d(x, 2)
        np.testing.assert_allclose(out.data[0, 0], [[5, 7], [13, 15]])

    def test_avg_pool_gradient_is_uniform(self):
        x = Tensor(np.arange(16.0).reshape(1, 1, 4, 4), requires_grad=True)
        F.avg_pool2d(x, 4).sum().backward()
        np.testing.assert_allclose(x.grad, np.full((1, 1, 4, 4), 1 / 16))


class TestSoftmaxAndLosses:
    def test_softmax_sums_to_one(self, rng):
        logits = Tensor(rng.normal(size=(5, 10)) * 10)
        probs = F.softmax(logits, axis=1)
        np.testing.assert_allclose(probs.data.sum(axis=1), 1.0, rtol=1e-10)

    def test_softmax_stable_for_large_values(self):
        logits = Tensor(np.array([[1000.0, 1000.0]]))
        probs = F.softmax(logits, axis=1)
        np.testing.assert_allclose(probs.data, [[0.5, 0.5]])

    def test_log_softmax_matches_log_of_softmax(self, rng):
        logits = Tensor(rng.normal(size=(3, 7)))
        np.testing.assert_allclose(
            F.log_softmax(logits).data, np.log(F.softmax(logits).data), rtol=1e-10
        )

    def test_cross_entropy_uniform_logits(self):
        logits = Tensor(np.zeros((4, 10)))
        loss = F.cross_entropy(logits, np.array([0, 1, 2, 3]))
        assert loss.item() == pytest.approx(np.log(10))

    def test_cross_entropy_perfect_prediction_near_zero(self):
        logits = np.full((2, 5), -100.0)
        logits[0, 2] = 100.0
        logits[1, 4] = 100.0
        loss = F.cross_entropy(Tensor(logits), np.array([2, 4]))
        assert loss.item() == pytest.approx(0.0, abs=1e-8)

    def test_cross_entropy_gradient_is_softmax_minus_onehot(self, rng):
        logits = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        targets = np.array([1, 0, 3])
        loss = F.cross_entropy(logits, targets)
        loss.backward()
        probs = F.softmax(Tensor(logits.data), axis=1).data
        onehot = np.eye(4)[targets]
        np.testing.assert_allclose(logits.grad, (probs - onehot) / 3, rtol=1e-8)

    def test_dropout_eval_identity_and_train_scaling(self, rng):
        x = Tensor(np.ones((100, 100)))
        assert np.allclose(F.dropout(x, 0.5, training=False).data, 1.0)
        dropped = F.dropout(x, 0.5, training=True, rng=rng)
        # Inverted dropout keeps the expectation ~1.
        assert dropped.data.mean() == pytest.approx(1.0, rel=0.1)
        assert set(np.unique(dropped.data)).issubset({0.0, 2.0})

"""Unit and property tests for the autograd Tensor."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.nn import Tensor, as_tensor, is_grad_enabled, no_grad


# ---------------------------------------------------------------------------
# Construction / basic properties
# ---------------------------------------------------------------------------


class TestTensorBasics:
    def test_construction_from_list(self):
        t = Tensor([[1.0, 2.0], [3.0, 4.0]])
        assert t.shape == (2, 2)
        assert t.dtype == np.float64
        assert not t.requires_grad

    def test_construction_from_tensor_shares_data(self):
        a = Tensor(np.arange(4.0))
        b = Tensor(a)
        assert np.shares_memory(a.data, b.data)

    def test_as_tensor_passthrough(self):
        a = Tensor([1.0])
        assert as_tensor(a) is a

    def test_as_tensor_from_scalar(self):
        t = as_tensor(3.5)
        assert t.data.shape == ()
        assert t.item() == 3.5

    def test_detach_cuts_graph(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = (a * 2).detach()
        assert not b.requires_grad
        assert b._backward is None

    def test_copy_is_independent(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = a.copy()
        b.data[0] = 99.0
        assert a.data[0] == 1.0

    def test_zero_grad(self):
        a = Tensor([1.0], requires_grad=True)
        (a * 2).backward()
        assert a.grad is not None
        a.zero_grad()
        assert a.grad is None

    def test_len_and_size(self):
        t = Tensor(np.zeros((3, 4)))
        assert len(t) == 3
        assert t.size == 12
        assert t.ndim == 2


class TestNoGrad:
    def test_no_grad_disables_graph(self):
        a = Tensor([1.0], requires_grad=True)
        with no_grad():
            assert not is_grad_enabled()
            b = a * 2
        assert is_grad_enabled()
        assert not b.requires_grad

    def test_no_grad_nesting_restores_state(self):
        with no_grad():
            with no_grad():
                assert not is_grad_enabled()
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_new_tensor_inside_no_grad_never_requires_grad(self):
        with no_grad():
            t = Tensor([1.0], requires_grad=True)
        assert not t.requires_grad


# ---------------------------------------------------------------------------
# Arithmetic forward values
# ---------------------------------------------------------------------------


class TestArithmeticValues:
    def test_add_sub_mul_div(self):
        a = Tensor([2.0, 4.0])
        b = Tensor([1.0, 2.0])
        assert np.allclose((a + b).data, [3, 6])
        assert np.allclose((a - b).data, [1, 2])
        assert np.allclose((a * b).data, [2, 8])
        assert np.allclose((a / b).data, [2, 2])

    def test_scalar_broadcasting(self):
        a = Tensor([1.0, 2.0])
        assert np.allclose((a + 1).data, [2, 3])
        assert np.allclose((1 + a).data, [2, 3])
        assert np.allclose((2 * a).data, [2, 4])
        assert np.allclose((1 - a).data, [0, -1])
        assert np.allclose((2 / a).data, [2, 1])

    def test_neg_and_pow(self):
        a = Tensor([2.0, -3.0])
        assert np.allclose((-a).data, [-2, 3])
        assert np.allclose((a ** 2).data, [4, 9])

    def test_pow_rejects_tensor_exponent(self):
        a = Tensor([2.0])
        with pytest.raises(TypeError):
            a ** Tensor([2.0])

    def test_matmul_2d(self):
        a = Tensor(np.arange(6.0).reshape(2, 3))
        b = Tensor(np.arange(12.0).reshape(3, 4))
        assert np.allclose((a @ b).data, a.data @ b.data)

    def test_comparisons_return_numpy(self):
        a = Tensor([1.0, 3.0])
        assert isinstance(a > 2, np.ndarray)
        assert (a > 2).tolist() == [False, True]
        assert (a >= 3).tolist() == [False, True]
        assert (a < 2).tolist() == [True, False]
        assert (a <= 1).tolist() == [True, False]


# ---------------------------------------------------------------------------
# Gradients
# ---------------------------------------------------------------------------


class TestGradients:
    def test_add_gradient_broadcast(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        b = Tensor(np.ones(3), requires_grad=True)
        (a + b).sum().backward()
        assert np.allclose(a.grad, np.ones((2, 3)))
        assert np.allclose(b.grad, [2.0, 2.0, 2.0])

    def test_mul_gradient(self):
        a = Tensor([2.0, 3.0], requires_grad=True)
        b = Tensor([5.0, 7.0], requires_grad=True)
        (a * b).sum().backward()
        assert np.allclose(a.grad, [5.0, 7.0])
        assert np.allclose(b.grad, [2.0, 3.0])

    def test_div_gradient(self):
        a = Tensor([6.0], requires_grad=True)
        b = Tensor([3.0], requires_grad=True)
        (a / b).backward()
        assert np.allclose(a.grad, [1 / 3])
        assert np.allclose(b.grad, [-6 / 9])

    def test_matmul_gradient_matches_numeric(self, gradcheck):
        rng = np.random.default_rng(0)
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(4, 2)), requires_grad=True)

        def loss_value():
            return float(((a.data @ b.data) ** 2).sum())

        out = (a @ b) ** 2
        out.sum().backward()
        idx = [(0, 1), (2, 3), (1, 0)]
        numeric = gradcheck(loss_value, a.data, idx)
        analytic = np.array([a.grad[i] for i in idx])
        np.testing.assert_allclose(analytic, numeric, rtol=1e-5, atol=1e-7)

    def test_gradient_accumulates_over_multiple_uses(self):
        a = Tensor([1.0], requires_grad=True)
        b = a * 2 + a * 3
        b.backward()
        assert np.allclose(a.grad, [5.0])

    def test_backward_with_explicit_grad(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        (a * 3).backward(np.array([1.0, 10.0]))
        assert np.allclose(a.grad, [3.0, 30.0])

    def test_sum_axis_keepdims_gradient(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        a.sum(axis=1, keepdims=True).sum().backward()
        assert np.allclose(a.grad, np.ones((2, 3)))

    def test_mean_gradient(self):
        a = Tensor(np.ones((4,)), requires_grad=True)
        a.mean().backward()
        assert np.allclose(a.grad, np.full(4, 0.25))

    def test_max_gradient_routes_to_argmax(self):
        a = Tensor([1.0, 5.0, 3.0], requires_grad=True)
        a.max().backward()
        assert np.allclose(a.grad, [0.0, 1.0, 0.0])

    def test_exp_log_sqrt_tanh_sigmoid_gradients(self, gradcheck):
        rng = np.random.default_rng(1)
        x_data = rng.uniform(0.5, 2.0, size=5)
        for op_name in ("exp", "log", "sqrt", "tanh", "sigmoid"):
            x = Tensor(x_data.copy(), requires_grad=True)
            getattr(x, op_name)().sum().backward()

            def value():
                return float(getattr(np, op_name if op_name != "sigmoid" else "tanh")(x.data).sum()) if op_name != "sigmoid" else float((1 / (1 + np.exp(-x.data))).sum())

            numeric = gradcheck(value, x.data, [(2,)])
            np.testing.assert_allclose(x.grad[2], numeric[0], rtol=1e-4)

    def test_relu_gradient_mask(self):
        a = Tensor([-1.0, 0.5], requires_grad=True)
        a.relu().sum().backward()
        assert np.allclose(a.grad, [0.0, 1.0])

    def test_clip_gradient(self):
        a = Tensor([-2.0, 0.5, 2.0], requires_grad=True)
        a.clip(-1.0, 1.0).sum().backward()
        assert np.allclose(a.grad, [0.0, 1.0, 0.0])

    def test_getitem_gradient_scatter(self):
        a = Tensor(np.arange(6.0), requires_grad=True)
        a[np.array([0, 0, 3])].sum().backward()
        expected = np.zeros(6)
        expected[0] = 2.0
        expected[3] = 1.0
        assert np.allclose(a.grad, expected)

    def test_pad_gradient(self):
        a = Tensor(np.ones((1, 2, 2, 2)), requires_grad=True)
        padded = a.pad(((0, 0), (1, 1), (0, 0), (0, 0)))
        assert padded.shape == (1, 4, 2, 2)
        padded.sum().backward()
        assert np.allclose(a.grad, np.ones((1, 2, 2, 2)))

    def test_reshape_transpose_gradient(self):
        a = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        (a.T.reshape(6) * np.arange(6.0)).sum().backward()
        assert a.grad.shape == (2, 3)

    def test_stack_and_concatenate_gradients(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        Tensor.stack([a, b], axis=0).sum().backward()
        assert np.allclose(a.grad, [1, 1]) and np.allclose(b.grad, [1, 1])
        a.zero_grad(), b.zero_grad()
        Tensor.concatenate([a, b], axis=0).sum().backward()
        assert np.allclose(a.grad, [1, 1]) and np.allclose(b.grad, [1, 1])

    def test_deep_chain_does_not_recurse(self):
        # A 3000-op chain exercises the iterative topological sort.
        x = Tensor([1.0], requires_grad=True)
        y = x
        for _ in range(3000):
            y = y * 1.0001
        y.backward()
        assert x.grad is not None and x.grad[0] > 1.0


# ---------------------------------------------------------------------------
# Property-based tests
# ---------------------------------------------------------------------------

_arrays = hnp.arrays(
    dtype=np.float64,
    shape=hnp.array_shapes(min_dims=1, max_dims=3, min_side=1, max_side=4),
    elements=st.floats(-10, 10, allow_nan=False),
)


class TestTensorProperties:
    @given(_arrays)
    @settings(max_examples=30, deadline=None)
    def test_add_commutative(self, values):
        a = Tensor(values)
        b = Tensor(values[::-1].copy().reshape(values.shape))
        np.testing.assert_allclose((a + b).data, (b + a).data)

    @given(_arrays)
    @settings(max_examples=30, deadline=None)
    def test_sum_of_ones_gradient(self, values):
        t = Tensor(values, requires_grad=True)
        (t * 1.0).sum().backward()
        np.testing.assert_allclose(t.grad, np.ones_like(values))

    @given(_arrays)
    @settings(max_examples=30, deadline=None)
    def test_relu_idempotent(self, values):
        t = Tensor(values)
        once = t.relu().data
        twice = t.relu().relu().data
        np.testing.assert_allclose(once, twice)

    @given(_arrays, st.floats(-5, 5, allow_nan=False))
    @settings(max_examples=30, deadline=None)
    def test_scalar_mul_linearity_of_grad(self, values, scale):
        t = Tensor(values, requires_grad=True)
        (t * scale).sum().backward()
        np.testing.assert_allclose(t.grad, np.full_like(values, scale))

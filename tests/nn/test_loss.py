"""Tests for loss functions and accuracy metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import CrossEntropyLoss, MSELoss, Tensor, accuracy, top_k_accuracy


class TestCrossEntropyLoss:
    def test_matches_manual_computation(self, rng):
        logits = rng.normal(size=(4, 6))
        targets = np.array([0, 5, 2, 2])
        loss = CrossEntropyLoss()(Tensor(logits), targets)
        shifted = logits - logits.max(axis=1, keepdims=True)
        logp = shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))
        expected = -logp[np.arange(4), targets].mean()
        assert loss.item() == pytest.approx(expected, rel=1e-10)

    def test_loss_decreases_as_prediction_improves(self):
        targets = np.array([1])
        weak = CrossEntropyLoss()(Tensor(np.array([[0.0, 0.5]])), targets)
        strong = CrossEntropyLoss()(Tensor(np.array([[0.0, 5.0]])), targets)
        assert strong.item() < weak.item()


class TestMSELoss:
    def test_zero_for_identical(self):
        x = Tensor(np.arange(10.0))
        assert MSELoss()(x, np.arange(10.0)).item() == pytest.approx(0.0)

    def test_value(self):
        pred = Tensor(np.array([1.0, 2.0]))
        target = np.array([0.0, 0.0])
        assert MSELoss()(pred, target).item() == pytest.approx(2.5)

    def test_gradient(self):
        pred = Tensor(np.array([3.0]), requires_grad=True)
        MSELoss()(pred, np.array([1.0])).backward()
        assert pred.grad[0] == pytest.approx(2 * (3.0 - 1.0) / 1)


class TestAccuracy:
    def test_perfect_and_zero(self):
        logits = np.eye(4) * 10
        assert accuracy(logits, np.arange(4)) == 1.0
        assert accuracy(logits, (np.arange(4) + 1) % 4) == 0.0

    def test_accepts_tensor_input(self):
        logits = Tensor(np.eye(3))
        assert accuracy(logits, np.arange(3)) == 1.0

    def test_partial(self):
        logits = np.array([[1, 0], [1, 0], [0, 1], [0, 1]], dtype=float)
        assert accuracy(logits, np.array([0, 1, 1, 0])) == 0.5

    def test_top_k(self):
        logits = np.array([[5.0, 4.0, 3.0, 0.0]])
        assert top_k_accuracy(logits, np.array([2]), k=3) == 1.0
        assert top_k_accuracy(logits, np.array([3]), k=3) == 0.0
        assert top_k_accuracy(logits, np.array([0]), k=1) == 1.0

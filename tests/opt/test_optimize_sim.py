"""Sim-fidelity search: seeded exhaustive agreement, determinism, budget."""

import pytest

from repro.api import Evaluator, simulate
from repro.opt import SearchSpace, optimize
from repro.opt.refine import candidate_seeds

FIXED = {"arrival": "deterministic", "arrival_rate_hz": 1.0, "n_requests": 30}


def exhaustive_sim(space, seed, metric):
    """Full-length simulate() of every candidate under the optimizer's own
    per-candidate seed streams — the reference the search must reproduce."""

    evaluator = Evaluator()
    out = {}
    for c in space.candidates():
        sim_seed, _ = candidate_seeds(seed, c.key)
        report = simulate(space.sim_scenario(c, seed=sim_seed), evaluator=evaluator)
        if metric == "p95_ms":
            out[c.key] = report.latency.percentiles[95] * 1e3
        else:
            raise AssertionError(metric)
    return out


class TestSmallSpaceIsExact:
    """When every survivor fits the budget at full length, halving is
    skipped and the sim answer equals the seeded exhaustive argmin."""

    def test_winner_matches_exhaustive_argmin(self):
        space = SearchSpace(
            axes={"board": ["PYNQ-Z2", "ZCU104"], "n_units": [16, 32]},
            fixed=FIXED,
        )
        report = optimize(space, "min:p95_ms", fidelity="sim", budget=6.0, seed=42)
        reference = exhaustive_sim(space, seed=42, metric="p95_ms")
        best_key = min(reference, key=lambda k: (reference[k], k))
        assert report.best is not None
        assert report.best["key"] == best_key
        assert report.best["objective"] == pytest.approx(reference[best_key])

    def test_pruned_candidates_are_infeasible_in_the_exhaustive_grid(self):
        space = SearchSpace(
            axes={"board": ["PYNQ-Z2", "ZCU104"], "n_units": [16, 32]},
            fixed=FIXED,
        )
        bound_ms = 400.0
        report = optimize(
            space, "board_price_usd", (f"p95_ms<={bound_ms}",),
            fidelity="sim", budget=6.0, seed=5,
        )
        reference = exhaustive_sim(space, seed=5, metric="p95_ms")
        pruned = report.by_status("pruned")
        assert pruned, "expected the latency lower bound to prune something"
        for record in pruned:
            assert reference[record.key] > bound_ms


class TestDeterminism:
    def test_seeded_runs_are_bit_identical(self):
        space = SearchSpace(
            axes={"board": ["PYNQ-Z2", "ZCU104"], "n_units": [16, 32], "replicas": [1, 2]},
            fixed=FIXED,
        )
        a = optimize(space, "min:p95_ms", fidelity="sim", budget=4.0, seed=7)
        b = optimize(space, "min:p95_ms", fidelity="sim", budget=4.0, seed=7)
        assert a.to_json() == b.to_json()

    def test_worker_count_never_changes_the_numbers(self):
        space = SearchSpace(
            axes={"board": ["PYNQ-Z2", "ZCU104"], "n_units": [16, 32]},
            fixed=FIXED,
        )
        inline = optimize(space, "min:p95_ms", fidelity="sim", budget=6.0, seed=9)
        pooled = optimize(space, "min:p95_ms", fidelity="sim", budget=6.0, seed=9, workers=2)
        assert inline.as_dict() == pooled.as_dict()

    def test_candidate_seeds_are_stable_and_distinct(self):
        a = candidate_seeds(3, "n_units=16|board=PYNQ-Z2")
        assert a == candidate_seeds(3, "n_units=16|board=PYNQ-Z2")
        assert a != candidate_seeds(4, "n_units=16|board=PYNQ-Z2")
        assert a != candidate_seeds(3, "n_units=32|board=PYNQ-Z2")


class TestBudget:
    def test_spent_never_exceeds_budget(self):
        space = SearchSpace(
            axes={"board": ["PYNQ-Z2", "ZCU104"], "n_units": [16, 32], "replicas": [1, 2]},
            fixed=FIXED,
        )
        report = optimize(space, "min:p95_ms", fidelity="sim", budget=3.0, seed=1)
        assert report.budget_spent <= report.budget + 1e-9
        assert report.budget == 3.0
        # The trace accounts for every candidate.
        assert len(report.candidates) == space.size

    def test_default_budget_is_a_fifth_of_the_grid(self):
        space = SearchSpace(
            axes={"board": ["PYNQ-Z2", "ZCU104"], "n_units": [16, 32], "replicas": [1, 2]},
            fixed=FIXED,
        )
        report = optimize(space, "min:p95_ms", fidelity="sim", seed=1)
        assert report.budget == pytest.approx(0.2 * space.size)

    def test_halving_trace_records_rungs(self):
        space = SearchSpace(
            axes={"board": ["PYNQ-Z2", "ZCU104"], "n_units": [16, 32], "replicas": [1, 2]},
            fixed=FIXED,
        )
        report = optimize(space, "min:p95_ms", fidelity="sim", budget=4.0, seed=7)
        halved = report.by_status("halved")
        assert halved, "budget 4.0 over 8 candidates must force halving"
        for record in halved:
            assert record.rungs
            assert "ranked" in record.reason
            assert record.cost > 0
        skipped = report.by_status("skipped")
        assert skipped, "the rung-0 cohort cannot admit all 8 candidates"


class TestFleetAndFaults:
    def test_fleet_fidelity_end_to_end(self):
        space = SearchSpace(
            axes={"board": ["PYNQ-Z2", "ZCU104"]},
            fixed={"count": 2, "arrival_rate_hz": 2.0, "n_requests": 40, "slo_s": 1.0},
        )
        report = optimize(
            space, "min:p99_ms", ("rejected_fraction<=0.5",),
            fidelity="fleet", budget=2.0, seed=3,
        )
        assert report.best is not None
        assert report.best["metrics"]["rejected_fraction"] is not None

    def test_faults_fidelity_exposes_expected_slo_violation(self):
        space = SearchSpace(
            axes={"n_units": [16, 32]},
            fixed={**FIXED, "n_requests": 15, "slo_s": 1.0},
        )
        report = optimize(
            space, "min:expected_slo_violation", fidelity="faults", budget=2.0, seed=1,
        )
        assert report.best is not None
        assert report.best["metrics"]["expected_slo_violation"] is not None

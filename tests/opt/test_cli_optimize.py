"""The optimize subcommand: formats, JSON schema, exit-2 error surface."""

import json

import pytest

from repro.cli import main


def run_cli(capsys, *argv) -> str:
    assert main(list(argv)) == 0
    return capsys.readouterr().out


def run_cli_error(capsys, *argv) -> str:
    assert main(list(argv)) == 2
    return capsys.readouterr().err


BASE = ["optimize", "--objective", "board_price_usd",
        "--constraint", "meets_timing==1", "--n-units", "16", "32"]


class TestFormats:
    def test_table_sections(self, capsys):
        out = run_cli(capsys, *BASE)
        assert "Constrained search: min:board_price_usd" in out
        assert "[constraints] meets_timing==1" in out
        assert "[budget]" in out
        assert "[best]" in out
        assert "Fully evaluated candidates" in out

    def test_json_schema(self, capsys):
        payload = json.loads(run_cli(capsys, *BASE, "--format", "json"))
        assert set(payload) >= {
            "fidelity", "objective", "constraints", "seed", "space",
            "budget", "budget_spent", "evaluations", "best", "candidates",
        }
        assert payload["fidelity"] == "analytic"
        assert payload["objective"] == {"metric": "board_price_usd", "maximize": False}
        assert payload["best"]["values"]["board"]
        # One trace entry per candidate, each fully described.
        assert len(payload["candidates"]) == payload["space"]["size"]
        for record in payload["candidates"]:
            assert set(record) >= {"key", "values", "stage", "status", "cost", "metrics"}

    def test_csv_has_one_row_per_candidate(self, capsys):
        out = run_cli(capsys, *BASE, "--format", "csv")
        lines = out.strip().splitlines()
        header = lines[0].split(",")
        assert {"status", "objective", "reason"} <= set(header)
        # 2 n_units x 4 registered boards (the default --boards is all).
        assert len(lines) == 1 + 8

    def test_json_flag_matches_format_json(self, capsys):
        a = json.loads(run_cli(capsys, *BASE, "--format", "json"))
        b = json.loads(run_cli(capsys, *BASE, "--json"))
        assert a == b


class TestErrors:
    def test_malformed_constraint_names_the_token(self, capsys):
        err = run_cli_error(
            capsys, "optimize", "--objective", "watts", "--constraint", "p99_ms<=fast",
        )
        assert "error:" in err
        assert "bad constraint 'p99_ms<=fast'" in err
        assert "'fast' is not a number" in err

    def test_constraint_without_operator(self, capsys):
        err = run_cli_error(
            capsys, "optimize", "--objective", "watts", "--constraint", "p99_ms",
        )
        assert "expected METRIC OP VALUE" in err

    def test_missing_objective(self, capsys):
        err = run_cli_error(capsys, "optimize")
        assert "--objective" in err

    def test_unknown_metric_for_fidelity(self, capsys):
        err = run_cli_error(capsys, "optimize", "--objective", "p99_ms")
        assert "unknown metric 'p99_ms'" in err
        assert "fidelity=analytic" in err

    def test_unknown_board_is_named(self, capsys):
        err = run_cli_error(
            capsys, "optimize", "--objective", "watts", "--boards", "DE10-Nano",
        )
        assert "DE10-Nano" in err


class TestInfeasible:
    def test_note_line_not_exception(self, capsys):
        out = run_cli(
            capsys, "optimize", "--objective", "watts",
            "--constraint", "latency_ms<=0.001",
        )
        assert "[note]" in out
        assert "no candidate satisfies the constraints" in out

    def test_infeasible_json_best_is_null(self, capsys):
        payload = json.loads(run_cli(
            capsys, "optimize", "--objective", "watts",
            "--constraint", "latency_ms<=0.001", "--format", "json",
        ))
        assert payload["best"] is None
        assert "note" in payload


class TestSimFidelity:
    def test_end_to_end_with_axes_and_traffic(self, capsys):
        payload = json.loads(run_cli(
            capsys, "optimize", "--objective", "min:p95_ms",
            "--fidelity", "sim", "--boards", "pynq-z2", "zcu104",
            "--n-units", "16", "32", "--arrivals", "deterministic",
            "--rate", "1", "--requests", "20", "--budget", "5",
            "--seed", "3", "--format", "json",
        ))
        assert payload["best"] is not None
        assert payload["budget_spent"] <= payload["budget"]
        assert payload["evaluations"] >= 1

    def test_seeded_cli_runs_are_byte_identical(self, capsys):
        argv = ["optimize", "--objective", "min:p95_ms", "--fidelity", "sim",
                "--boards", "pynq-z2", "--n-units", "16", "32",
                "--arrivals", "deterministic", "--rate", "1",
                "--requests", "20", "--seed", "8", "--format", "json"]
        assert run_cli(capsys, *argv) == run_cli(capsys, *argv)

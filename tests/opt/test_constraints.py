"""Constraint / objective expressions and their error surface."""

import math

import pytest

from repro.opt import Constraint, Objective, parse_constraint, parse_objective


class TestParseConstraint:
    @pytest.mark.parametrize(
        "spec, metric, op, bound",
        [
            ("p99_ms<=5", "p99_ms", "<=", 5.0),
            ("throughput_rps>=2.5", "throughput_rps", ">=", 2.5),
            ("watts<1.5", "watts", "<", 1.5),
            ("bram_pct>10", "bram_pct", ">", 10.0),
            ("fits_device==1", "fits_device", "==", 1.0),
            ("  p95_ms <= 8e-1 ", "p95_ms", "<=", 0.8),
        ],
    )
    def test_grammar(self, spec, metric, op, bound):
        c = parse_constraint(spec)
        assert (c.metric, c.op, c.bound) == (metric, op, bound)

    def test_bad_bound_names_the_token(self):
        with pytest.raises(ValueError, match="bound 'fast' is not a number"):
            parse_constraint("p99_ms<=fast")

    def test_missing_metric_names_the_operator(self):
        with pytest.raises(ValueError, match="missing metric name before '<='"):
            parse_constraint("<=5")

    def test_double_operator_rejected(self):
        with pytest.raises(ValueError, match="more than one comparison operator"):
            parse_constraint("1<p99_ms<5")

    def test_no_operator_names_expected_shape(self):
        with pytest.raises(ValueError, match="expected METRIC OP VALUE"):
            parse_constraint("p99_ms")

    def test_non_finite_bound_rejected(self):
        with pytest.raises(ValueError, match="finite"):
            parse_constraint("watts<=inf")


class TestSatisfied:
    def test_each_operator(self):
        assert parse_constraint("x<=2").satisfied(2.0)
        assert not parse_constraint("x<2").satisfied(2.0)
        assert parse_constraint("x>=2").satisfied(2.0)
        assert not parse_constraint("x>2").satisfied(2.0)
        assert parse_constraint("x==2").satisfied(2.0)
        assert not parse_constraint("x==2").satisfied(2.1)

    def test_unknown_values_never_prove_feasibility(self):
        c = parse_constraint("x<=2")
        assert not c.satisfied(None)
        assert not c.satisfied(float("nan"))

    def test_spec_round_trip(self):
        assert parse_constraint("p99_ms<=5").spec == "p99_ms<=5"
        assert parse_constraint("p99_ms<=5").as_dict() == {
            "metric": "p99_ms", "op": "<=", "bound": 5.0,
        }


class TestObjective:
    def test_bare_metric_minimizes(self):
        obj = parse_objective("watts")
        assert obj == Objective(metric="watts", maximize=False)
        assert obj.spec == "min:watts"

    def test_min_max_prefixes(self):
        assert parse_objective("min:p99_ms").maximize is False
        assert parse_objective("max:throughput_rps").maximize is True

    def test_signed_negates_when_maximizing(self):
        assert parse_objective("max:x").signed(3.0) == -3.0
        assert parse_objective("min:x").signed(3.0) == 3.0
        assert parse_objective("max:x").signed(None) is None
        assert parse_objective("max:x").signed(math.nan) is None

    def test_bad_direction_is_named(self):
        with pytest.raises(ValueError, match="direction 'most' must be 'min' or 'max'"):
            parse_objective("most:watts")

    def test_empty_metric_rejected(self):
        with pytest.raises(ValueError, match="missing metric name"):
            parse_objective("min:")
        with pytest.raises(ValueError, match="empty metric name"):
            parse_objective("")

    def test_operators_rejected_in_objectives(self):
        with pytest.raises(ValueError, match="belong in --constraint"):
            parse_objective("watts<=2")

    def test_unknown_op_in_constructor(self):
        with pytest.raises(ValueError, match="unknown constraint operator"):
            Constraint(metric="x", op="!=", bound=1.0)

"""The analytic correctness anchor: optimize() == the exhaustive argmin.

At ``fidelity="analytic"`` every candidate is screened exactly, so the
optimizer must return *precisely* the constrained argmin an exhaustive
``sweep_batch`` grid would pick — computed here independently from the raw
batch columns, not through any repro.opt code path.
"""

import json

import pytest

from repro.api import sweep_batch
from repro.opt import OptReport, SearchSpace, optimize
from repro.platform import BOARDS, get_board

AXES = {
    "board": ["PYNQ-Z2", "Zybo-Z7-20", "Ultra96-V2", "ZCU104"],
    "qformat": ["16:8", "32:20"],
    "n_units": [16, 32],
}


def exhaustive_argmin(space, objective_of, feasible_of):
    """Brute-force reference: scan every candidate's raw batch record."""

    candidates = space.candidates()
    table = sweep_batch([space.scenario(c) for c in candidates])
    best = None
    for i, c in enumerate(candidates):
        rec = table.record(i)
        if not feasible_of(rec):
            continue
        value = objective_of(rec)
        entry = (value, c.key)
        if best is None or entry < best:
            best = entry
    return best


class TestExhaustiveAnchor:
    def test_constrained_argmin_matches_sweep_batch(self):
        space = SearchSpace(axes=AXES)
        report = optimize(
            space,
            objective="board_price_usd",
            constraints=("latency_ms<=500", "meets_timing==1"),
        )
        reference = exhaustive_argmin(
            space,
            objective_of=lambda rec: get_board(str(rec["board"])).price_usd,
            feasible_of=lambda rec: (
                float(rec["total_w_pl_s"]) * 1e3 <= 500 and bool(rec["meets_timing"])
            ),
        )
        assert reference is not None
        assert report.best is not None
        assert report.best["key"] == reference[1]
        assert report.best["objective"] == pytest.approx(reference[0])

    def test_maximize_objective_matches(self):
        space = SearchSpace(axes=AXES)
        report = optimize(
            space,
            objective="max:overall_speedup",
            constraints=("meets_timing==1",),
        )
        reference = max(
            (
                (float(rec["overall_speedup"]), c.key)
                for c, rec in _records(space)
                if bool(rec["meets_timing"])
            ),
            key=lambda e: (e[0], [-ord(ch) for ch in e[1]]),
        )
        assert report.best["objective"] == pytest.approx(reference[0])

    def test_analytic_spends_no_simulation_budget(self):
        report = optimize(SearchSpace(axes=AXES), objective="watts")
        assert report.budget_spent == 0.0
        assert report.evaluations == 0
        # Every candidate is accounted for in the trace.
        assert len(report.candidates) == report.space["size"]
        statuses = {c.status for c in report.candidates}
        assert statuses <= {"feasible", "infeasible", "best"}


def _records(space):
    candidates = space.candidates()
    table = sweep_batch([space.scenario(c) for c in candidates])
    return [(c, table.record(i)) for i, c in enumerate(candidates)]


class TestInfeasibleSpace:
    def test_returns_report_not_exception(self):
        report = optimize(
            SearchSpace(axes={"n_units": [16, 32]}),
            objective="watts",
            constraints=("latency_ms<=0.001",),
        )
        assert isinstance(report, OptReport)
        assert report.best is None
        assert "no candidate satisfies the constraints" in report.note
        assert "[note]" in report.render()

    def test_json_null_semantics(self):
        report = optimize(
            SearchSpace(axes={"n_units": [16]}),
            objective="watts",
            constraints=("latency_ms<=0.001",),
        )
        payload = json.loads(report.to_json())
        assert payload["best"] is None
        assert isinstance(payload["note"], str)
        assert len(payload["candidates"]) == 1


class TestValidation:
    def test_unknown_metric_lists_valid_ones(self):
        with pytest.raises(ValueError, match="unknown metric 'qps'.*fidelity=analytic"):
            optimize(SearchSpace(axes={"n_units": [16]}), objective="qps")

    def test_sim_metric_rejected_at_analytic_fidelity(self):
        with pytest.raises(ValueError, match="unknown metric 'p99_ms'"):
            optimize(
                SearchSpace(axes={"n_units": [16]}),
                objective="watts",
                constraints=("p99_ms<=5",),
            )

    def test_unknown_fidelity_rejected(self):
        with pytest.raises(ValueError, match="unknown fidelity 'exact'"):
            optimize(SearchSpace(axes={"n_units": [16]}), objective="watts", fidelity="exact")

    def test_slo_metric_requires_fixed_slo(self):
        with pytest.raises(ValueError, match="slo_violation_fraction.*slo_s"):
            optimize(
                SearchSpace(axes={"n_units": [16]}),
                objective="min:slo_violation_fraction",
                fidelity="sim",
            )

    def test_nonpositive_budget_rejected(self):
        with pytest.raises(ValueError, match="budget must be positive"):
            optimize(SearchSpace(axes={"n_units": [16]}), objective="watts", budget=0)


class TestDeterminismAndTies:
    def test_repeat_runs_are_identical(self):
        space = SearchSpace(axes=AXES)
        a = optimize(space, "watts", ("meets_timing==1",), seed=11)
        b = optimize(space, "watts", ("meets_timing==1",), seed=11)
        assert a.as_dict() == b.as_dict()

    def test_ties_break_on_candidate_key(self):
        # board_price_usd ties across qformats on the same board; the first
        # key in lexicographic order must win, deterministically.
        space = SearchSpace(axes={"board": ["PYNQ-Z2"], "qformat": ["16:8", "32:20"]})
        report = optimize(space, "board_price_usd")
        assert report.best["key"] == "qformat=16:8|board=PYNQ-Z2"

    def test_all_registered_boards_have_prices(self):
        for name in BOARDS:
            assert get_board(name).price_usd is not None


class TestParetoFront:
    def test_front_over_evaluated_candidates(self):
        report = optimize(SearchSpace(axes=AXES), objective="watts")
        front = report.pareto_front("latency_ms", "watts")
        assert front
        # No front member dominates another on both metrics.
        for a in front:
            for b in front:
                if a is b:
                    continue
                assert not (
                    a.metrics["latency_ms"] <= b.metrics["latency_ms"]
                    and a.metrics["watts"] <= b.metrics["watts"]
                )

"""SearchSpace: enumeration, validation, neighborhoods, scenario builders."""

import pytest

from repro.opt import Candidate, SearchSpace
from repro.opt.space import AXIS_ORDER


class TestConstruction:
    def test_size_is_the_axis_product(self):
        space = SearchSpace(axes={"board": ["PYNQ-Z2", "ZCU104"], "n_units": [8, 16, 32]})
        assert space.size == 6
        assert len(space.candidates()) == 6

    def test_axes_are_reordered_canonically(self):
        space = SearchSpace(axes={"board": ["PYNQ-Z2"], "depth": [20, 56], "n_units": [16]})
        assert space.axis_names == ("depth", "n_units", "board")
        assert [AXIS_ORDER.index(n) for n in space.axis_names] == sorted(
            AXIS_ORDER.index(n) for n in space.axis_names
        )

    def test_unknown_axis_is_named(self):
        with pytest.raises(ValueError, match="unknown axis 'clock'"):
            SearchSpace(axes={"clock": [100]})

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="axis 'depth' has no values"):
            SearchSpace(axes={"depth": []})

    def test_duplicate_axis_value_rejected(self):
        with pytest.raises(ValueError, match="repeats value"):
            SearchSpace(axes={"n_units": [16, 16]})

    def test_unknown_fixed_knob_is_named(self):
        with pytest.raises(ValueError, match="unknown fixed knob 'turbo'"):
            SearchSpace(axes={"n_units": [16]}, fixed={"turbo": True})

    def test_design_axes_cannot_be_fixed_knobs(self):
        # Design knobs are axes-only; the fixed dict is for traffic/serving
        # knobs, so fixing n_units is rejected as an unknown fixed knob.
        with pytest.raises(ValueError, match="unknown fixed knob 'n_units'"):
            SearchSpace(axes={"board": ["PYNQ-Z2"]}, fixed={"n_units": 8})

    def test_unknown_board_fails_at_construction(self):
        with pytest.raises(ValueError):
            SearchSpace(axes={"board": ["DE10-Nano"]})

    def test_qformat_accepts_strings_and_pairs(self):
        space = SearchSpace(axes={"qformat": ["16:8", (32, 20)]})
        keys = [c.key for c in space.candidates()]
        assert keys == ["qformat=16:8", "qformat=32:20"]

    def test_malformed_qformat_string_is_named(self):
        with pytest.raises(ValueError, match="'16-8' must be 'WL:FB'"):
            SearchSpace(axes={"qformat": ["16-8"]})


class TestEnumeration:
    def test_candidate_keys_are_stable_and_ordered(self):
        space = SearchSpace(axes={"board": ["PYNQ-Z2", "ZCU104"], "n_units": [16, 32]})
        keys = [c.key for c in space.candidates()]
        assert keys == [
            "n_units=16|board=PYNQ-Z2",
            "n_units=16|board=ZCU104",
            "n_units=32|board=PYNQ-Z2",
            "n_units=32|board=ZCU104",
        ]
        # Enumeration is deterministic call to call.
        assert [c.key for c in space.candidates()] == keys

    def test_board_names_canonicalised_into_keys(self):
        space = SearchSpace(axes={"board": ["pynq-z2"]})
        assert space.candidates()[0].key == "board=PYNQ-Z2"

    def test_neighbors_step_one_axis_at_a_time(self):
        space = SearchSpace(axes={"n_units": [8, 16, 32], "depth": [20, 56]})
        middle = space.candidates()[1]
        assert middle.key == "depth=20|n_units=16"
        nkeys = [c.key for c in space.neighbors(middle)]
        # Axes in canonical order, minus-step before plus-step.
        assert nkeys == [
            "depth=56|n_units=16",
            "depth=20|n_units=8",
            "depth=20|n_units=32",
        ]

    def test_neighbors_at_the_corner(self):
        space = SearchSpace(axes={"n_units": [8, 16, 32]})
        first, mid, last = space.candidates()
        assert [c.key for c in space.neighbors(first)] == [mid.key]
        assert {c.key for c in space.neighbors(mid)} == {first.key, last.key}


class TestBuilders:
    def test_scenario_applies_design_axes(self):
        space = SearchSpace(axes={"qformat": ["16:8"], "board": ["ZCU104"], "n_units": [32]})
        s = space.scenario(space.candidates()[0])
        assert (s.word_length, s.fraction_bits, s.board, s.n_units) == (16, 8, "ZCU104", 32)

    def test_sim_scenario_fraction_scales_requests(self):
        space = SearchSpace(
            axes={"n_units": [16]},
            fixed={"arrival": "deterministic", "arrival_rate_hz": 2.0, "n_requests": 40},
        )
        c = space.candidates()[0]
        assert space.sim_scenario(c, fraction=1.0).n_requests == 40
        assert space.sim_scenario(c, fraction=0.25).n_requests == 10
        assert space.sim_scenario(c, seed=7).seed == 7

    def test_sim_scenario_defaults_requests_when_unbounded(self):
        space = SearchSpace(axes={"n_units": [16]})
        assert space.sim_scenario(space.candidates()[0]).n_requests == 100

    def test_fleet_scenario_uses_count_and_board_axis(self):
        space = SearchSpace(
            axes={"board": ["ZCU104"]},
            fixed={"count": 3, "n_requests": 60},
        )
        fs = space.fleet_scenario(space.candidates()[0])
        assert fs.boards[0].board == "ZCU104"
        assert fs.boards[0].count == 3
        assert fs.n_requests == 60

    def test_fleet_scenario_defaults_to_reference_board(self):
        space = SearchSpace(axes={"n_units": [16]})
        fs = space.fleet_scenario(space.candidates()[0])
        assert fs.boards[0].board == "PYNQ-Z2"

    def test_as_dict_round_trips_qformat_strings(self):
        space = SearchSpace(axes={"qformat": ["16:8"], "n_units": [16]})
        d = space.as_dict()
        assert d["axes"]["qformat"] == ["16:8"]
        assert d["size"] == 1

    def test_candidate_get_and_as_dict(self):
        c = Candidate(values=(("n_units", 16), ("qformat", (16, 8))))
        assert c.get("n_units") == 16
        assert c.get("board", "none") == "none"
        assert c.as_dict() == {"n_units": 16, "qformat": "16:8"}

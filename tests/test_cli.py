"""Tests for the repro-odenet command-line interface."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import build_parser, main, registered_commands

GOLDEN_DIR = Path(__file__).parent / "golden"

#: Default invocation of each pre-registry subcommand, matched against the
#: golden captures taken from the seed CLI (byte-identical port guarantee).
GOLDEN_INVOCATIONS = {
    "table1": ["table1"],
    "table2": ["table2"],
    "table3": ["table3"],
    "table4": ["table4"],
    "table5": ["table5"],
    "figure5": ["figure5"],
    "figure6": ["figure6"],
    "offload": ["offload", "rODENet-3"],
    "energy": ["energy", "rODENet-3"],
    "training": ["training"],
}


def run_cli(capsys, *argv) -> str:
    assert main(list(argv)) == 0
    return capsys.readouterr().out


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_depth(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table4", "--depth", "21"])

    def test_rejects_unknown_model(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["offload", "VGG"])


class TestTableCommands:
    def test_table1(self, capsys):
        out = run_cli(capsys, "table1")
        assert "PYNQ-Z2" in out and "650MHz" in out

    def test_table2(self, capsys):
        out = run_cli(capsys, "table2")
        assert "layer3_2" in out and "300.54" in out

    def test_table3_with_and_without_estimates(self, capsys):
        with_estimates = run_cli(capsys, "table3")
        assert "model_lut" in with_estimates
        without = run_cli(capsys, "table3", "--no-estimates")
        assert "model_lut" not in without

    def test_table4_depth(self, capsys):
        out = run_cli(capsys, "table4", "--depth", "20")
        assert "1 / 6" in out  # rODENet-3 layer3_2 at N=20

    def test_table5_single_depth(self, capsys):
        out = run_cli(capsys, "table5", "--depth", "56")
        assert "rODENet-3" in out and "2.66" in out

    def test_table5_parallelism_option(self, capsys):
        out = run_cli(capsys, "table5", "--depth", "56", "--n-units", "1")
        assert "2.66" not in out  # conv_x1 cannot reach the headline speedup


class TestFigureCommands:
    def test_figure5(self, capsys):
        out = run_cli(capsys, "figure5")
        assert "ResNet" in out and "rODENet-1+2" in out

    def test_figure6_default_and_paper_only(self, capsys):
        full = run_cli(capsys, "figure6")
        assert "68.02" in full
        paper_only = run_cli(capsys, "figure6", "--paper-only")
        assert "rODENet-1" not in paper_only

    def test_figure6_points_listing(self, capsys):
        out = run_cli(capsys, "figure6", "--points")
        assert "estimated" in out and "paper" in out


class TestDesignCommands:
    def test_offload(self, capsys):
        out = run_cli(capsys, "offload", "rODENet-3", "--depth", "56")
        assert "layer3_2" in out
        assert "2.66x" in out
        assert "True" in out

    def test_energy(self, capsys):
        out = run_cli(capsys, "energy", "rODENet-3", "--depth", "56")
        assert "energy_ratio" in out

    def test_training(self, capsys):
        out = run_cli(capsys, "training", "--depth", "56", "--models", "ResNet", "rODENet-3")
        assert "step_speedup" in out
        assert "rODENet-3" in out


class TestGoldenOutputs:
    """The registry port must not change any pre-existing default output."""

    @pytest.mark.parametrize("name", sorted(GOLDEN_INVOCATIONS))
    def test_byte_identical_with_seed(self, capsys, name):
        golden = (GOLDEN_DIR / f"{name}.txt").read_text()
        assert run_cli(capsys, *GOLDEN_INVOCATIONS[name]) == golden


class TestRegistry:
    def test_every_command_is_registered_and_parseable(self):
        commands = registered_commands()
        parser = build_parser()
        for name, cmd in commands.items():
            assert cmd.name == name
            assert callable(cmd.handler)
            # Round-trip: the parser accepts each registered subcommand.
            argv = GOLDEN_INVOCATIONS.get(name, [name])
            args = parser.parse_args(argv)
            assert args.command == name
            assert hasattr(args, "json")

    def test_all_nine_seed_commands_present_plus_new_ones(self):
        names = set(registered_commands())
        assert set(GOLDEN_INVOCATIONS) <= names
        assert {"eval", "sweep"} <= names

    def test_duplicate_registration_rejected(self):
        from repro.cli import command

        with pytest.raises(ValueError, match="duplicate"):
            command("table1")(lambda args, ev: None)


class TestJsonFlag:
    @pytest.mark.parametrize("name", sorted(GOLDEN_INVOCATIONS))
    def test_json_output_parses_for_every_command(self, capsys, name):
        out = run_cli(capsys, *GOLDEN_INVOCATIONS[name], "--json")
        json.loads(out)

    def test_offload_json_is_full_result(self, capsys):
        data = json.loads(run_cli(capsys, "offload", "rODENet-3", "--json"))
        assert data["scenario"]["model"] == "rODENet-3"
        assert data["resources"]["fits_device"] is True
        assert data["timing"]["overall_speedup"] == pytest.approx(2.66, abs=0.01)


class TestEvalCommand:
    def test_default_eval_reports_headline_design(self, capsys):
        out = run_cli(capsys, "eval")
        assert "Scenario rODENet-3-56" in out
        for section in ("[parameters]", "[resources]", "[timing]", "[energy]", "[training]"):
            assert section in out

    def test_eval_json(self, capsys):
        data = json.loads(run_cli(capsys, "eval", "rODENet-3", "--depth", "56", "--json"))
        assert data["energy"]["energy_ratio"] > 1.0

    def test_eval_solver_knob(self, capsys):
        euler = json.loads(run_cli(capsys, "eval", "--solver", "euler", "--json"))
        rk4 = json.loads(run_cli(capsys, "eval", "--solver", "rk4", "--json"))
        assert rk4["timing"]["total_wo_pl_s"] > euler["timing"]["total_wo_pl_s"]


class TestSweepCommand:
    def test_csv_grid_one_row_per_scenario(self, capsys):
        out = run_cli(capsys, "sweep", "--depths", "20", "56", "--n-units", "8", "16",
                      "--format", "csv")
        lines = out.strip().splitlines()
        header = lines[0].split(",")
        assert len(lines) == 1 + 7 * 2 * 2  # all Table-5 models x 2 depths x 2 unit counts
        for column in ("bram", "dsp", "total_w_pl_s", "overall_speedup", "energy_ratio"):
            assert column in header

    def test_workers_do_not_change_output(self, capsys):
        argv = ["sweep", "--models", "rODENet-3", "--depths", "20", "56",
                "--n-units", "8", "16", "--format", "csv"]
        serial = run_cli(capsys, *argv, "--workers", "1")
        parallel = run_cli(capsys, *argv, "--workers", "4")
        assert serial == parallel

    def test_json_format(self, capsys):
        out = run_cli(capsys, "sweep", "--models", "rODENet-3", "--depths", "56",
                      "--format", "json")
        data = json.loads(out)
        assert len(data) == 1 and data[0]["scenario"]["depth"] == 56

    def test_wordlength_axis(self, capsys):
        out = run_cli(capsys, "sweep", "--models", "rODENet-3", "--depths", "56",
                      "--wordlengths", "32", "16", "--format", "json")
        data = json.loads(out)
        assert [d["scenario"]["word_length"] for d in data] == [32, 16]
        assert data[1]["resources"]["bram"] < data[0]["resources"]["bram"]

    @pytest.mark.parametrize("fmt", ["csv", "json", "table"])
    def test_batch_engine_output_identical_to_loop(self, capsys, fmt):
        argv = ["sweep", "--models", "rODENet-3", "Hybrid-3", "--depths", "20", "56",
                "--n-units", "8", "16", "--format", fmt]
        loop = run_cli(capsys, *argv)
        batch = run_cli(capsys, *argv, "--engine", "batch")
        assert batch == loop

    def test_pareto_format(self, capsys):
        out = run_cli(capsys, "sweep", "--models", "rODENet-3", "--depths", "20", "56",
                      "--n-units", "1", "4", "16", "--engine", "batch", "--format", "pareto",
                      "--pareto-x", "bram", "--pareto-y", "overall_speedup", "--maximize-y")
        assert "Pareto front over (bram, overall_speedup)" in out

    def test_pareto_works_with_loop_engine_too(self, capsys):
        out = run_cli(capsys, "sweep", "--models", "rODENet-3", "--depths", "20", "56",
                      "--format", "pareto")
        assert "Pareto front" in out

    def test_unknown_pareto_metric_is_a_clean_error(self, capsys):
        assert main(["sweep", "--models", "rODENet-3", "--depths", "56",
                     "--format", "pareto", "--pareto-x", "totl_w_pl_s"]) == 2
        err = capsys.readouterr().err
        assert "error:" in err and "unknown pareto metric" in err

    def test_non_numeric_pareto_metric_is_a_clean_error(self, capsys):
        assert main(["sweep", "--models", "rODENet-3", "--depths", "56",
                     "--format", "pareto", "--pareto-x", "targets"]) == 2
        err = capsys.readouterr().err
        assert "error:" in err and "numeric" in err

    def test_workers_flag_rejected_with_batch_engine(self, capsys):
        assert main(["sweep", "--models", "rODENet-3", "--depths", "56",
                     "--engine", "batch", "--workers", "8"]) == 2
        assert "loop engine" in capsys.readouterr().err

    def test_cache_dir_requires_batch_engine(self, capsys, tmp_path):
        assert main(["sweep", "--models", "rODENet-3", "--depths", "56",
                     "--cache-dir", str(tmp_path / "c")]) == 2
        assert "requires --engine batch" in capsys.readouterr().err

    def test_cache_dir_persists_results(self, capsys, tmp_path):
        cache_dir = tmp_path / "sweep-cache"
        argv = ["sweep", "--models", "rODENet-3", "--depths", "20", "56",
                "--engine", "batch", "--cache-dir", str(cache_dir), "--format", "csv"]
        first = run_cli(capsys, *argv)
        assert len(list(cache_dir.glob("*/*.json"))) == 2
        assert run_cli(capsys, *argv) == first


class TestBoardsCommand:
    def test_lists_every_registered_board(self, capsys):
        from repro.platform import list_boards

        out = run_cli(capsys, "boards")
        assert "Registered boards" in out
        for name in list_boards():
            assert name in out

    def test_json_records_carry_the_device_vector(self, capsys):
        out = run_cli(capsys, "boards", "--json")
        records = json.loads(out)
        by_name = {r["board"]: r for r in records}
        assert by_name["ZCU104"]["dsp"] == 1728
        assert by_name["PYNQ-Z2"]["bram36"] == 140
        for record in records:
            for key in ("fpga", "bram36", "dsp", "lut", "ff", "pl_mhz", "ps_active_w"):
                assert key in record


class TestBoardAxis:
    def test_sweep_boards_batch_matches_loop_bit_for_bit(self, capsys):
        argv = ["sweep", "--models", "rODENet-3", "--depths", "20", "56",
                "--n-units", "8", "16", "--boards", "PYNQ-Z2,Zybo-Z7-20,Ultra96-V2",
                "--format", "csv"]
        batch = run_cli(capsys, *argv, "--engine", "batch")
        loop = run_cli(capsys, *argv, "--engine", "loop")
        assert batch == loop
        rows = batch.splitlines()
        assert len(rows) == 1 + 2 * 2 * 3  # header + models x units x boards
        assert sum("Ultra96-V2" in row for row in rows) == 4

    def test_sweep_boards_space_separated_too(self, capsys):
        out = run_cli(capsys, "sweep", "--models", "ResNet", "--depths", "20",
                      "--boards", "PYNQ-Z2", "ZCU104", "--format", "csv")
        assert "ZCU104" in out and "PYNQ-Z2" in out

    def test_unknown_board_is_a_clean_error_listing_the_registry(self, capsys):
        assert main(["sweep", "--models", "ResNet", "--depths", "20",
                     "--boards", "DE10-Nano"]) == 2
        err = capsys.readouterr().err
        assert "unknown board 'DE10-Nano'" in err and "PYNQ-Z2" in err

    def test_eval_board_knob(self, capsys):
        out = run_cli(capsys, "eval", "rODENet-3", "--board", "ZCU104", "--json")
        data = json.loads(out)
        assert data["scenario"]["board"] == "ZCU104"
        assert data["scenario"]["pl_clock_hz"] == 200e6

    def test_timing_board_knob(self, capsys):
        pynq = run_cli(capsys, "timing", "--n-units", "32")
        zcu = run_cli(capsys, "timing", "--n-units", "32", "--board", "ZCU104")
        assert "FAILED" in pynq  # conv_x32 misses 100 MHz on the 7-series
        assert "200.0 MHz" in zcu


class TestSimBoardComparison:
    def test_two_boards_share_one_trace(self, capsys):
        out = run_cli(capsys, "sim", "rODENet-1", "--depth", "20", "--rate", "3",
                      "--requests", "20", "--replicas", "auto", "--ps-cores", "auto",
                      "--board", "PYNQ-Z2,ZCU104")
        assert "Cross-board serving" in out
        assert "PYNQ-Z2" in out and "ZCU104" in out

    def test_comparison_json_is_one_report_per_board(self, capsys):
        out = run_cli(capsys, "sim", "rODENet-1", "--depth", "20", "--rate", "3",
                      "--requests", "15", "--board", "PYNQ-Z2,Ultra96-V2", "--json")
        reports = json.loads(out)
        assert [r["scenario"]["board"] for r in reports] == ["PYNQ-Z2", "Ultra96-V2"]
        offered = {r["requests"]["offered"] for r in reports}
        assert offered == {15}  # identical trace across boards

    def test_warmup_flag_trims_measurement(self, capsys):
        out = run_cli(capsys, "sim", "rODENet-1", "--depth", "20", "--rate", "4",
                      "--requests", "30", "--warmup", "2.0", "--json")
        report = json.loads(out)
        assert report["scenario"]["warmup_s"] == 2.0
        assert report["requests"]["measured"] < report["requests"]["offered"]

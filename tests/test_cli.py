"""Tests for the repro-odenet command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv) -> str:
    assert main(list(argv)) == 0
    return capsys.readouterr().out


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_depth(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table4", "--depth", "21"])

    def test_rejects_unknown_model(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["offload", "VGG"])


class TestTableCommands:
    def test_table1(self, capsys):
        out = run_cli(capsys, "table1")
        assert "PYNQ-Z2" in out and "650MHz" in out

    def test_table2(self, capsys):
        out = run_cli(capsys, "table2")
        assert "layer3_2" in out and "300.54" in out

    def test_table3_with_and_without_estimates(self, capsys):
        with_estimates = run_cli(capsys, "table3")
        assert "model_lut" in with_estimates
        without = run_cli(capsys, "table3", "--no-estimates")
        assert "model_lut" not in without

    def test_table4_depth(self, capsys):
        out = run_cli(capsys, "table4", "--depth", "20")
        assert "1 / 6" in out  # rODENet-3 layer3_2 at N=20

    def test_table5_single_depth(self, capsys):
        out = run_cli(capsys, "table5", "--depth", "56")
        assert "rODENet-3" in out and "2.66" in out

    def test_table5_parallelism_option(self, capsys):
        out = run_cli(capsys, "table5", "--depth", "56", "--n-units", "1")
        assert "2.66" not in out  # conv_x1 cannot reach the headline speedup


class TestFigureCommands:
    def test_figure5(self, capsys):
        out = run_cli(capsys, "figure5")
        assert "ResNet" in out and "rODENet-1+2" in out

    def test_figure6_default_and_paper_only(self, capsys):
        full = run_cli(capsys, "figure6")
        assert "68.02" in full
        paper_only = run_cli(capsys, "figure6", "--paper-only")
        assert "rODENet-1" not in paper_only

    def test_figure6_points_listing(self, capsys):
        out = run_cli(capsys, "figure6", "--points")
        assert "estimated" in out and "paper" in out


class TestDesignCommands:
    def test_offload(self, capsys):
        out = run_cli(capsys, "offload", "rODENet-3", "--depth", "56")
        assert "layer3_2" in out
        assert "2.66x" in out
        assert "True" in out

    def test_energy(self, capsys):
        out = run_cli(capsys, "energy", "rODENet-3", "--depth", "56")
        assert "energy_ratio" in out

    def test_training(self, capsys):
        out = run_cli(capsys, "training", "--depth", "56", "--models", "ResNet", "rODENet-3")
        assert "step_speedup" in out
        assert "rODENet-3" in out

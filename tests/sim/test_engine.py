"""Property-based and unit tests of the discrete-event kernel.

The three load-bearing invariants (events fire in timestamp order, FIFO
tie-breaking, monotone clock) are pinned with hypothesis over arbitrary
delay sets — these are what make every simulation deterministic and
reproducible.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Simulator
from repro.sim.engine import Event, Timeout

delays = st.lists(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=60,
)


@settings(max_examples=200, deadline=None)
@given(delays)
def test_events_fire_in_timestamp_order(ds):
    sim = Simulator()
    fired = []
    for i, d in enumerate(ds):
        sim.timeout(d).add_callback(lambda _v, i=i: fired.append((sim.now, i)))
    sim.run()
    assert len(fired) == len(ds)
    times = [t for t, _ in fired]
    assert times == sorted(times)
    # Every event fires exactly at its scheduled timestamp.
    assert sorted(times) == sorted(ds)


@settings(max_examples=200, deadline=None)
@given(delays)
def test_fifo_ties_preserve_scheduling_order(ds):
    """Events scheduled for the same instant fire in scheduling order."""

    sim = Simulator()
    fired = []
    for i, d in enumerate(ds):
        sim.timeout(d).add_callback(lambda _v, i=i: fired.append((sim.now, i)))
    sim.run()
    # All scheduled at t=0: within one timestamp, scheduling index ascends.
    by_time = {}
    for t, i in fired:
        by_time.setdefault(t, []).append(i)
    for indices in by_time.values():
        assert indices == sorted(indices)


@settings(max_examples=200, deadline=None)
@given(delays)
def test_clock_never_goes_backwards(ds):
    sim = Simulator()
    observed = []
    for d in ds:
        sim.timeout(d).add_callback(lambda _v: observed.append(sim.now))
    last = [0.0]

    sim.run()
    for now in observed:
        assert now >= last[0]
        last[0] = now
    assert sim.now == max(ds)


@settings(max_examples=100, deadline=None)
@given(st.lists(st.floats(min_value=0.0, max_value=1e3, allow_nan=False), min_size=1, max_size=20))
def test_process_timeout_chain_advances_by_sum(ds):
    sim = Simulator()

    def proc():
        for d in ds:
            yield sim.timeout(d)
        return "done"

    p = sim.process(proc())
    sim.run()
    assert p.processed and p.value == "done"
    assert sim.now == pytest.approx(sum(ds))


class TestEvents:
    def test_negative_timeout_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            Simulator().timeout(-1.0)

    def test_event_fires_with_value(self):
        sim = Simulator()
        ev = sim.event()
        seen = []
        ev.add_callback(seen.append)
        ev.succeed(42)
        sim.run()
        assert seen == [42]

    def test_double_succeed_rejected(self):
        sim = Simulator()
        ev = sim.event()
        ev.succeed()
        with pytest.raises(RuntimeError, match="already triggered"):
            ev.succeed()

    def test_waiting_on_processed_event_still_fires(self):
        """A callback registered after the event fired runs (no deadlock)."""

        sim = Simulator()
        ev = sim.event()
        ev.succeed("early")
        sim.run()
        assert ev.processed
        late = []
        ev.add_callback(late.append)
        sim.run()
        assert late == ["early"]

    def test_yielding_non_event_is_a_type_error(self):
        sim = Simulator()

        def bad():
            yield 3.0

        sim.process(bad())
        with pytest.raises(TypeError, match="must yield Event"):
            sim.run()


class TestProcesses:
    def test_process_waits_on_process(self):
        sim = Simulator()
        trace = []

        def child():
            yield sim.timeout(2.0)
            trace.append(("child", sim.now))
            return "payload"

        def parent():
            value = yield sim.process(child())
            trace.append(("parent", sim.now, value))

        sim.process(parent())
        sim.run()
        assert trace == [("child", 2.0), ("parent", 2.0, "payload")]

    def test_all_of_waits_for_every_event(self):
        sim = Simulator()
        results = []

        def proc():
            values = yield sim.all_of([sim.timeout(3.0, "a"), sim.timeout(1.0, "b")])
            results.append((sim.now, values))

        sim.process(proc())
        sim.run()
        assert results == [(3.0, ["a", "b"])]

    def test_all_of_empty_fires_immediately(self):
        sim = Simulator()
        done = sim.all_of([])
        sim.run()
        assert done.processed and done.value == []


def _noop():
    return None
    yield  # pragma: no cover — makes this a (never-waiting) generator


class TestDelayedProcesses:
    """`process_at` / `process_batch`: the arrival fast path."""

    @settings(max_examples=100, deadline=None)
    @given(delays)
    def test_process_batch_equals_one_by_one_spawning(self, ds):
        def spawn(sim, out, batch):
            def job(i):
                out.append((sim.now, i))
                return i
                yield  # pragma: no cover — a generator with no waits

            pairs = [(d, job(i)) for i, d in enumerate(ds)]
            if batch:
                sim.process_batch(pairs)
            else:
                for d, gen in pairs:
                    sim.process_at(d, gen)
            sim.run()
            return out

        solo = spawn(Simulator(), [], batch=False)
        batched = spawn(Simulator(), [], batch=True)
        # Identical firing instants *and* identical FIFO tie-breaking.
        assert batched == solo
        assert [t for t, _ in solo] == sorted(t for t, _ in solo)

    def test_process_at_matches_a_leading_timeout(self):
        sim = Simulator()
        trace = []

        def job():
            trace.append(sim.now)
            yield sim.timeout(2.0)
            trace.append(sim.now)
            return "ok"

        p = sim.process_at(3.0, job())
        sim.run()
        assert trace == [3.0, 5.0]
        assert p.processed and p.value == "ok"

    def test_process_at_is_cheaper_than_a_timeout_chain(self):
        # Delayed start + completion: 2 events.  The equivalent
        # `yield timeout(d)` process costs 3 (start, timeout, completion) —
        # the saving that makes million-request arrival scheduling cheap.
        fast = Simulator()
        fast.process_at(1.0, _noop())
        fast.run()
        assert fast.events_processed == 2

        def waits(sim):
            yield sim.timeout(1.0)

        slow = Simulator()
        slow.process(waits(slow))
        slow.run()
        assert slow.events_processed == 3

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            Simulator().process_at(-0.5, _noop())

    def test_batch_interleaves_with_existing_events(self):
        sim = Simulator()
        order = []
        sim.timeout(1.0).add_callback(lambda _v: order.append("timeout"))
        sim.process_batch([(1.0, _noop())])
        sim.schedule(1.0, lambda: order.append("late"))
        sim.run()
        assert order == ["timeout", "late"]
        assert sim.now == 1.0


class TestSchedule:
    def test_schedule_fires_a_callback_after_the_delay(self):
        sim = Simulator()
        fired = []
        sim.schedule(3.0, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [3.0]

    def test_schedule_shares_the_fifo_queue(self):
        """A scheduled callback ties with a timeout in scheduling order."""

        sim = Simulator()
        order = []
        sim.timeout(1.0).add_callback(lambda _v: order.append("timeout"))
        sim.schedule(1.0, lambda: order.append("callback"))
        sim.run()
        assert order == ["timeout", "callback"]


class TestRunUntil:
    def test_until_stops_the_clock(self):
        sim = Simulator()
        fired = []
        for d in (1.0, 2.0, 5.0):
            sim.timeout(d).add_callback(lambda _v, d=d: fired.append(d))
        sim.run(until=2.0)
        assert fired == [1.0, 2.0]
        assert sim.now == 2.0
        sim.run()
        assert fired == [1.0, 2.0, 5.0]

    def test_until_in_the_past_rejected(self):
        sim = Simulator()
        sim.timeout(4.0)
        sim.run()
        with pytest.raises(ValueError, match="already at"):
            sim.run(until=1.0)

    def test_events_processed_counter(self):
        sim = Simulator()
        for d in (1.0, 2.0):
            sim.timeout(d)
        sim.run()
        assert sim.events_processed == 2

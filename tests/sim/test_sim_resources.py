"""Tests of the counted-FIFO resource, the AXI bus and the monitors."""

from __future__ import annotations

import pytest

from repro.fpga.axi import AxiTransferConfig, AxiTransferModel
from repro.sim import AxiBus, Resource, Simulator


class TestResource:
    def test_capacity_validation(self):
        with pytest.raises(ValueError, match="capacity"):
            Resource(Simulator(), capacity=0)

    def test_grants_are_strict_fifo(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        order = []

        def user(i):
            yield res.request()
            order.append(i)
            yield sim.timeout(1.0)
            res.release()

        for i in range(5):
            sim.process(user(i))
        sim.run()
        assert order == [0, 1, 2, 3, 4]
        assert sim.now == 5.0

    def test_capacity_two_overlaps(self):
        sim = Simulator()
        res = Resource(sim, capacity=2)

        def user():
            yield from res.use(1.0)

        for _ in range(4):
            sim.process(user())
        sim.run()
        # Two at a time: 4 one-second holds finish in 2 seconds.
        assert sim.now == 2.0

    def test_release_of_idle_resource_rejected(self):
        res = Resource(Simulator(), capacity=1)
        with pytest.raises(RuntimeError, match="idle"):
            res.release()

    def test_utilization_integral(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)

        def user():
            yield from res.use(3.0)
            yield sim.timeout(3.0)  # idle tail

        sim.process(user())
        sim.run()
        assert sim.now == 6.0
        assert res.utilization(sim.now) == pytest.approx(0.5)

    def test_queue_depth_peak(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)

        def user():
            yield from res.use(1.0)

        for _ in range(4):
            sim.process(user())
        sim.run()
        assert res.queue_depth.peak == 3


class TestAxiBus:
    def test_transfer_time_matches_model(self):
        sim = Simulator()
        bus = AxiBus(sim, channels=1)
        model = AxiTransferModel()

        def mover():
            yield from bus.transfer(16384)

        sim.process(mover())
        sim.run()
        assert sim.now == pytest.approx(model.transfer_seconds(16384))
        assert bus.words_moved == 16384
        assert bus.transfers == 1

    def test_zero_word_transfer_is_free(self):
        sim = Simulator()
        bus = AxiBus(sim)

        def mover():
            yield from bus.transfer(0)

        sim.process(mover())
        sim.run()
        assert sim.now == 0.0
        assert bus.transfers == 0

    def test_bursts_serialize_on_one_channel(self):
        sim = Simulator()
        config = AxiTransferConfig(setup_cycles=100.0)
        bus = AxiBus(sim, channels=1, model=AxiTransferModel(config))
        per = bus.model.transfer_seconds(1000)

        def mover():
            yield from bus.transfer(1000)

        for _ in range(3):
            sim.process(mover())
        sim.run()
        assert sim.now == pytest.approx(3 * per)

    def test_two_channels_halve_the_makespan(self):
        sim = Simulator()
        bus = AxiBus(sim, channels=2)
        per = bus.model.transfer_seconds(1000)

        def mover():
            yield from bus.transfer(1000)

        for _ in range(4):
            sim.process(mover())
        sim.run()
        assert sim.now == pytest.approx(2 * per)

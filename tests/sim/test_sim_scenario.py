"""Tests of the :class:`SimScenario` value object and its API integration."""

from __future__ import annotations

import pytest

from repro.api import Scenario
from repro.api.cache import scenario_key
from repro.sim import SimScenario


class TestValidation:
    def test_defaults_are_valid(self):
        s = SimScenario()
        assert s.arrival == "poisson" and s.policy == "fifo"
        assert s.model == "rODENet-3"  # inherits the Scenario knobs

    def test_inherited_scenario_validation_still_applies(self):
        with pytest.raises(ValueError, match="unknown model"):
            SimScenario(model="nope")

    @pytest.mark.parametrize(
        "kwargs, match",
        [
            (dict(arrival="bursty"), "unknown arrival process"),
            (dict(arrival="trace"), "trace"),
            (dict(arrival_rate_hz=0.0), "arrival_rate_hz"),
            (dict(n_requests=0), "n_requests"),
            (dict(duration_s=-1.0), "duration_s"),
            (dict(replicas=-1), "replicas"),
            (dict(policy="lifo"), "unknown policy"),
            (dict(batch_size=0), "batch_size"),
            (dict(ps_cores=-1), "ps_cores"),
            (dict(dma_channels=0), "dma_channels"),
            (dict(warmup_s=-0.5), "warmup_s"),
        ],
    )
    def test_bad_knobs_rejected(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            SimScenario(**kwargs)

    def test_trace_normalised_to_tuple(self):
        s = SimScenario(arrival="trace", trace=[0.0, 1.0], n_requests=None)
        assert s.trace == (0.0, 1.0)
        assert hash(s)  # stays hashable

    def test_replicas_zero_means_auto(self):
        assert SimScenario(replicas=0).replicas == 0

    def test_request_bound_stays_unresolved_on_the_instance(self):
        # The 100-request default for unbounded rate-driven runs is applied
        # by simulate(), not baked into the frozen instance — so adding a
        # duration via replace() unbounds the count instead of keeping a cap.
        assert SimScenario().n_requests is None
        assert SimScenario().replace(duration_s=10.0).n_requests is None
        trace = tuple(float(i) for i in range(150))
        assert SimScenario(arrival="trace", trace=trace).n_requests is None

    def test_trace_with_rate_driven_arrival_rejected(self):
        with pytest.raises(ValueError, match="arrival='trace'"):
            SimScenario(trace=(0.0, 0.5))
        with pytest.raises(ValueError, match="at least one"):
            SimScenario(arrival="trace", trace=())


class TestViews:
    def test_design_point_strips_sim_knobs(self):
        s = SimScenario(model="rODENet-1", depth=20, n_units=8, replicas=3)
        base = s.design_point
        assert type(base) is Scenario
        assert base == Scenario(model="rODENet-1", depth=20, n_units=8)

    def test_as_dict_round_trips(self):
        s = SimScenario(
            model="rODENet-3",
            depth=20,
            arrival="trace",
            trace=(0.0, 0.5),
            n_requests=None,
            policy="batched",
            batch_size=2,
        )
        data = s.as_dict()
        assert data["policy"] == "batched"
        assert data["trace"] == [0.0, 0.5]
        assert SimScenario.from_dict(data) == s

    def test_replace_revalidates(self):
        s = SimScenario()
        assert s.replace(policy="round_robin").policy == "round_robin"
        with pytest.raises(ValueError, match="unknown policy"):
            s.replace(policy="nope")

    def test_cache_key_differs_from_plain_scenario(self):
        """Subclass results must never collide with plain-scenario entries."""

        plain = Scenario()
        sim = SimScenario()
        assert scenario_key(plain) != scenario_key(sim)

    def test_sim_knobs_change_the_hash(self):
        assert SimScenario(seed=0) != SimScenario(seed=1)
        assert hash(SimScenario(seed=0)) != hash(SimScenario(seed=1))

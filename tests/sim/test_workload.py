"""Tests of arrival processes, request mixes and service-plan compilation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import Evaluator, Scenario
from repro.sim import arrival_times, build_service_plan, sample_mix
from repro.sim.workload import PlExecution, PsSegment


class TestArrivals:
    def test_deterministic_spacing(self):
        times = arrival_times("deterministic", rate_hz=4.0, n_requests=5)
        assert times == [0.0, 0.25, 0.5, 0.75, 1.0]

    def test_deterministic_duration_bound(self):
        times = arrival_times("deterministic", rate_hz=2.0, duration_s=1.0)
        assert times == [0.0, 0.5, 1.0]

    def test_poisson_is_reproducible(self):
        a = arrival_times("poisson", rate_hz=3.0, n_requests=50, rng=np.random.default_rng(7))
        b = arrival_times("poisson", rate_hz=3.0, n_requests=50, rng=np.random.default_rng(7))
        assert a == b
        assert len(a) == 50
        assert all(t2 > t1 for t1, t2 in zip(a, a[1:]))

    def test_poisson_mean_rate(self):
        times = arrival_times(
            "poisson", rate_hz=10.0, n_requests=4000, rng=np.random.default_rng(0)
        )
        assert times[-1] / len(times) == pytest.approx(0.1, rel=0.1)

    def test_poisson_duration_only(self):
        times = arrival_times(
            "poisson", rate_hz=5.0, duration_s=20.0, rng=np.random.default_rng(3)
        )
        assert times and times[-1] <= 20.0
        assert len(times) == pytest.approx(100, rel=0.4)

    def test_trace_replay_and_truncation(self):
        times = arrival_times("trace", trace=[0.0, 0.5, 2.0, 9.0], duration_s=3.0)
        assert times == [0.0, 0.5, 2.0]

    def test_trace_must_be_sorted(self):
        with pytest.raises(ValueError, match="sorted"):
            arrival_times("trace", trace=[1.0, 0.5])

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown arrival process"):
            arrival_times("bursty", rate_hz=1.0, n_requests=1)

    def test_rate_required(self):
        with pytest.raises(ValueError, match="positive rate"):
            arrival_times("poisson", rate_hz=0.0, n_requests=1)

    def test_bound_required(self):
        with pytest.raises(ValueError, match="bound"):
            arrival_times("poisson", rate_hz=1.0)


class TestMix:
    def test_single_entry_is_constant(self):
        s = Scenario()
        assert sample_mix([(s, 1.0)], 5) == [s] * 5

    def test_weighted_sampling_reproducible(self):
        a = Scenario(model="rODENet-3", depth=56)
        b = Scenario(model="rODENet-1", depth=20)
        rng1 = np.random.default_rng(11)
        rng2 = np.random.default_rng(11)
        picks1 = sample_mix([(a, 3.0), (b, 1.0)], 200, rng=rng1)
        picks2 = sample_mix([(a, 3.0), (b, 1.0)], 200, rng=rng2)
        assert picks1 == picks2
        share = sum(1 for s in picks1 if s == a) / 200
        assert share == pytest.approx(0.75, abs=0.1)

    def test_bad_weights_rejected(self):
        with pytest.raises(ValueError, match="weights"):
            sample_mix([(Scenario(), -1.0)], 3)
        with pytest.raises(ValueError, match="at least one"):
            sample_mix([], 3)


class TestServicePlan:
    def test_plan_total_matches_analytic_latency(self):
        ev = Evaluator()
        scenario = Scenario(model="rODENet-3", depth=56)
        plan = build_service_plan(scenario, evaluator=ev)
        analytic = ev.evaluate(scenario).timing["total_w_pl_s"]
        assert plan.total_seconds == pytest.approx(analytic, rel=1e-12)

    def test_offloaded_layer_becomes_pl_executions(self):
        ev = Evaluator()
        scenario = Scenario(model="rODENet-3", depth=56)
        plan = build_service_plan(scenario, evaluator=ev)
        report = ev.execution_report(scenario)
        entry = report.layer_entry("layer3_2")
        pl = [s for s in plan.segments if isinstance(s, PlExecution)]
        assert len(pl) == entry.executions
        assert all(s.layer == "layer3_2" for s in pl)
        # Each invocation decomposes exactly into DMA in + compute + DMA out.
        assert pl[0].seconds == pytest.approx(entry.pl_seconds_per_execution, rel=1e-12)
        assert pl[0].words_in > 0 and pl[0].words_out > 0
        assert pl[0].compute_seconds > pl[0].transfer_in_seconds

    def test_software_model_has_no_pl_segments(self):
        plan = build_service_plan(Scenario(model="ResNet", depth=20))
        assert plan.pl_executions == 0
        assert all(isinstance(s, PsSegment) for s in plan.segments)
        assert plan.segments[-1].layer == "overhead"

    def test_solver_stages_multiply_executions(self):
        euler = build_service_plan(Scenario(model="rODENet-3", depth=20, solver="euler"))
        rk4 = build_service_plan(Scenario(model="rODENet-3", depth=20, solver="rk4"))
        assert rk4.pl_executions == 4 * euler.pl_executions

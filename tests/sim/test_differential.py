"""Differential cross-validation: simulator vs the analytic latency model.

The acceptance bar of the subsystem: with one request, one replica and the
FIFO policy nothing ever queues, so the simulated end-to-end latency must
reproduce the analytic ``total_w_pl_s`` within 1 % — here asserted to a far
tighter tolerance over a 24-scenario grid (6 models x 4 depths).  Beyond the
contention-free identity, the multi-request scenarios are sanity-checked for
the queueing behaviour closed-form models cannot express.
"""

from __future__ import annotations

import pytest

from repro.api import Evaluator, Scenario, scenario_grid
from repro.sim import SimScenario, simulate

#: 6 models x 4 depths = 24 design points (> the 20 the issue requires).
GRID = scenario_grid(
    models=("rODENet-1", "rODENet-2", "rODENet-1+2", "rODENet-3", "ODENet-3", "Hybrid-3"),
    depths=(20, 32, 44, 56),
)

_EVALUATOR = Evaluator()


@pytest.mark.parametrize("scenario", GRID, ids=lambda s: s.full_name)
def test_single_request_latency_matches_analytic(scenario: Scenario):
    analytic = _EVALUATOR.evaluate(scenario).timing["total_w_pl_s"]
    report = simulate(
        SimScenario(
            arrival="deterministic",
            n_requests=1,
            replicas=1,
            policy="fifo",
            **scenario.as_dict(),
        ),
        evaluator=_EVALUATOR,
    )
    assert report.requests["completed"] == 1
    assert report.latency.mean == pytest.approx(analytic, rel=0.01)
    # The agreement is by construction much tighter than the 1% bar.
    assert report.latency.mean == pytest.approx(analytic, rel=1e-9)


def test_unbounded_rate_driven_run_defaults_to_100_requests():
    report = simulate(
        SimScenario(
            model="rODENet-3", depth=20, arrival="deterministic", arrival_rate_hz=500.0
        ),
        evaluator=_EVALUATOR,
    )
    assert report.requests["offered"] == 100


def test_replace_with_duration_unbinds_the_request_count():
    base = SimScenario(
        model="rODENet-3", depth=20, arrival="deterministic", arrival_rate_hz=20.0
    )
    report = simulate(base.replace(duration_s=10.0), evaluator=_EVALUATOR)
    # 20 req/s for 10 s: the defaulted 100-request cap must not stick.
    assert report.requests["offered"] == 201


def test_plain_scenario_is_promoted_to_single_request_run():
    scenario = Scenario(model="rODENet-3", depth=56)
    report = simulate(scenario, evaluator=_EVALUATOR)
    analytic = _EVALUATOR.evaluate(scenario).timing["total_w_pl_s"]
    assert report.latency.mean == pytest.approx(analytic, rel=1e-9)


def test_sequential_arrivals_have_no_queueing_inflation():
    """Arrivals slower than the service time: every request sees base latency."""

    scenario = Scenario(model="rODENet-3", depth=20)
    analytic = _EVALUATOR.evaluate(scenario).timing["total_w_pl_s"]
    report = simulate(
        SimScenario(
            arrival="deterministic",
            arrival_rate_hz=1.0 / (2 * analytic),
            n_requests=8,
            replicas=1,
            **scenario.as_dict(),
        ),
        evaluator=_EVALUATOR,
    )
    assert report.latency.maximum == pytest.approx(analytic, rel=1e-9)
    assert report.wait.maximum == pytest.approx(0.0, abs=1e-12)


class TestMultiRequestBehaviour:
    """Queueing effects the closed-form model cannot express."""

    def test_latency_grows_with_offered_load(self):
        def p95_at(rate):
            return simulate(
                SimScenario(
                    model="rODENet-3",
                    depth=20,
                    arrival="poisson",
                    arrival_rate_hz=rate,
                    n_requests=60,
                    replicas=1,
                    seed=9,
                ),
                evaluator=_EVALUATOR,
            ).latency.percentiles[95]

        assert p95_at(6.0) > 1.5 * p95_at(0.5)

    def test_conservation_all_offered_requests_complete(self):
        report = simulate(
            SimScenario(
                model="rODENet-3",
                depth=56,
                arrival="poisson",
                arrival_rate_hz=4.0,
                n_requests=40,
                replicas=2,
                policy="batched",
                seed=2,
            ),
            evaluator=_EVALUATOR,
        )
        assert report.requests["completed"] == report.requests["offered"] == 40

    def test_saturated_throughput_is_bounded_by_service_capacity(self):
        scenario = Scenario(model="rODENet-3", depth=20)
        report = simulate(
            SimScenario(
                arrival="poisson",
                arrival_rate_hz=1000.0,
                n_requests=50,
                replicas=1,
                seed=1,
                **scenario.as_dict(),
            ),
            evaluator=_EVALUATOR,
        )
        # The PS core is the bottleneck: near-saturated (not exactly 1.0 —
        # the tail requests drain through their PL-only phases), and the
        # pipelined throughput exceeds the single-request rate but stays
        # bounded by the service capacity.
        assert report.utilization["ps"] > 0.75
        assert 1.0 / report.service_s < report.throughput_rps <= 2.0 / report.service_s

    def test_mixed_traffic_uses_per_scenario_service_times(self):
        base = Scenario(model="rODENet-3", depth=56)
        light = base.replace(depth=20)
        report = simulate(
            SimScenario(
                arrival="deterministic",
                arrival_rate_hz=0.2,
                n_requests=30,
                replicas=1,
                seed=3,
                **base.as_dict(),
            ),
            evaluator=_EVALUATOR,
            mix=[(base, 1.0), (light, 1.0)],
        )
        heavy_s = _EVALUATOR.evaluate(base).timing["total_w_pl_s"]
        light_s = _EVALUATOR.evaluate(light).timing["total_w_pl_s"]
        # Uncongested run: latencies are exactly the two service times.
        assert report.latency.minimum == pytest.approx(light_s, rel=1e-9)
        assert report.latency.maximum == pytest.approx(heavy_s, rel=1e-9)

    def test_mix_must_share_the_hardware(self):
        base = Scenario(model="rODENet-3", depth=56, n_units=16)
        other = base.replace(n_units=8)
        with pytest.raises(ValueError, match="n_units"):
            simulate(
                SimScenario(arrival="deterministic", n_requests=4, **base.as_dict()),
                evaluator=_EVALUATOR,
                mix=[(base, 1.0), (other, 1.0)],
            )

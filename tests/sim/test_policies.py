"""Tests of dispatch policies, replica sizing and the dispatcher mechanics."""

from __future__ import annotations

import pytest

from repro.api import Evaluator, Scenario
from repro.sim import (
    Accelerator,
    AxiBus,
    Dispatcher,
    FifoPolicy,
    PlExecution,
    Request,
    SimScenario,
    Simulator,
    make_policy,
    max_replicas,
    simulate,
)


@pytest.fixture(scope="module")
def evaluator():
    return Evaluator()


class TestMakePolicy:
    def test_names(self):
        assert make_policy("fifo").name == "fifo"
        assert make_policy("batched", batch_size=8).batch_size == 8
        assert make_policy("round_robin").name == "round_robin"

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown policy"):
            make_policy("lifo")

    def test_bad_batch_size_rejected(self):
        with pytest.raises(ValueError, match="batch_size"):
            make_policy("batched", batch_size=0)


class TestMaxReplicas:
    def test_sized_by_device_budget(self, evaluator):
        scenario = Scenario(model="rODENet-3", depth=56, n_units=16)
        fit = max_replicas(scenario, evaluator=evaluator)
        per = evaluator.offload_decision(scenario).resources
        device = scenario.board_spec.fpga
        assert fit >= 1
        assert per.scale(fit).fits(device)
        assert not per.scale(fit + 1).fits(device)

    def test_smaller_datapath_fits_more(self, evaluator):
        # layer3_2's BRAM demand caps rODENet-3 at one copy; layer1's much
        # smaller feature maps leave room for several replicas.
        big = max_replicas(Scenario(model="rODENet-3", depth=56, n_units=16), evaluator=evaluator)
        small = max_replicas(Scenario(model="rODENet-1", depth=56, n_units=1), evaluator=evaluator)
        assert big == 1
        assert small > big

    def test_no_offload_target_gets_one(self, evaluator):
        assert max_replicas(Scenario(model="ResNet", depth=20), evaluator=evaluator) == 1


def _sim(evaluator, **kw):
    defaults = dict(
        model="rODENet-3",
        depth=20,
        arrival="deterministic",
        arrival_rate_hz=8.0,
        n_requests=16,
        replicas=2,
        policy="fifo",
        seed=0,
    )
    defaults.update(kw)
    return simulate(SimScenario(**defaults), evaluator=evaluator)


class TestPolicies:
    def test_round_robin_spreads_work_evenly(self, evaluator):
        report = _sim(evaluator, policy="round_robin", replicas=2)
        utils = report.utilization["accelerators"]
        assert len(utils) == 2
        # Pinned rotation: both replicas see almost identical load.
        assert utils[0] == pytest.approx(utils[1], rel=0.2)

    def test_fifo_is_work_conserving_under_load(self, evaluator):
        # Four PS cores keep the PL fed, so the single replica saturates.
        fifo = _sim(
            evaluator, policy="fifo", arrival_rate_hz=50.0, n_requests=30,
            replicas=1, ps_cores=4,
        )
        assert fifo.requests["completed"] == 30
        assert max(fifo.utilization["accelerators"]) > 0.5

    def test_batched_forms_batches_under_load(self, evaluator):
        report = _sim(
            evaluator, policy="batched", batch_size=4, arrival_rate_hz=100.0,
            n_requests=24, replicas=1,
        )
        assert report.batch_sizes["max"] > 1
        assert report.batch_sizes["max"] <= 4

    def test_batched_single_request_equals_fifo(self, evaluator):
        fifo = _sim(evaluator, policy="fifo", n_requests=1, replicas=1)
        batched = _sim(evaluator, policy="batched", n_requests=1, replicas=1)
        assert batched.latency.mean == pytest.approx(fifo.latency.mean, rel=1e-12)

    def test_batched_pipelining_beats_fifo_at_saturation(self, evaluator):
        common = dict(arrival_rate_hz=200.0, n_requests=40, replicas=1, ps_cores=4)
        fifo = _sim(evaluator, policy="fifo", **common)
        batched = _sim(evaluator, policy="batched", batch_size=8, **common)
        # Double-buffered DMA hides transfer time inside compute time.
        assert batched.horizon_s < fifo.horizon_s

    def test_dispatcher_prices_transfers_from_the_plan(self):
        """DMA bursts use the execution's *stored* times, not the bus model.

        The service plan may have been built with a non-default transfer
        model; the simulated (DMA in, compute, DMA out) must follow its
        decomposition or the contention-free identity breaks.
        """

        sim = Simulator()
        bus = AxiBus(sim, channels=1)  # default model would price these differently
        dispatcher = Dispatcher(sim, bus, [Accelerator(sim, 0)], FifoPolicy())
        plx = PlExecution(
            layer="layer1",
            words_in=100,
            words_out=100,
            transfer_in_seconds=0.25,
            transfer_out_seconds=0.5,
            compute_seconds=1.0,
        )
        request = Request(index=0, arrival=0.0, scenario=Scenario())
        done = dispatcher.submit(request, plx)
        sim.run()
        assert done.processed
        assert sim.now == pytest.approx(0.25 + 1.0 + 0.5)

    def test_two_replicas_beat_one_under_load(self, evaluator):
        one = _sim(evaluator, replicas=1, arrival_rate_hz=50.0, n_requests=30, ps_cores=4)
        two = _sim(evaluator, replicas=2, arrival_rate_hz=50.0, n_requests=30, ps_cores=4)
        assert two.latency.percentiles[95] < one.latency.percentiles[95]
        assert two.horizon_s <= one.horizon_s

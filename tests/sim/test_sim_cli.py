"""Tests of the ``sim`` CLI subcommand (and the sweep --verbose satellite)."""

from __future__ import annotations

import json

import pytest

from repro.cli import main


def run_cli(capsys, *argv) -> str:
    assert main(list(argv)) == 0
    return capsys.readouterr().out


class TestSimCommand:
    def test_table_output_has_sections(self, capsys):
        out = run_cli(
            capsys, "sim", "rODENet-3", "--depth", "20", "--arrivals", "deterministic",
            "--rate", "2", "--requests", "5",
        )
        for token in ("[requests]", "[latency]", "[utilization]", "[energy]"):
            assert token in out
        assert "offered            : 5" in out

    def test_json_output_schema(self, capsys):
        out = run_cli(
            capsys, "sim", "rODENet-3", "--depth", "20", "--arrivals", "poisson",
            "--rate", "3", "--requests", "10", "--replicas", "2", "--json",
        )
        payload = json.loads(out)
        for key in ("scenario", "requests", "latency", "utilization", "energy",
                    "throughput_rps", "horizon_s"):
            assert key in payload
        assert payload["requests"]["completed"] == 10
        assert payload["scenario"]["replicas"] == 2

    def test_format_json_equals_global_json(self, capsys):
        args = ["sim", "rODENet-3", "--depth", "20", "--requests", "5", "--seed", "1"]
        a = run_cli(capsys, *args, "--format", "json")
        b = run_cli(capsys, *args, "--json")
        assert json.loads(a) == json.loads(b)

    def test_csv_output(self, capsys):
        out = run_cli(
            capsys, "sim", "rODENet-3", "--depth", "20", "--requests", "5",
            "--format", "csv",
        )
        header, row = out.strip().splitlines()
        assert len(header.split(",")) == len(row.split(","))
        assert "latency_p95_s" in header

    def test_auto_replicas(self, capsys):
        # layer1's small footprint fits twice on the XC7Z020.
        out = run_cli(
            capsys, "sim", "rODENet-1", "--depth", "20", "--requests", "4",
            "--n-units", "1", "--replicas", "auto", "--json",
        )
        payload = json.loads(out)
        assert payload["scenario"]["replicas"] >= 2

    def test_duration_only_run_is_not_capped_at_the_default(self, capsys):
        out = run_cli(
            capsys, "sim", "rODENet-1", "--depth", "20", "--arrivals", "poisson",
            "--rate", "60", "--duration", "2", "--replicas", "2", "--ps-cores", "2",
            "--json",
        )
        payload = json.loads(out)
        assert payload["requests"]["offered"] > 100

    def test_long_trace_is_not_truncated(self, capsys):
        trace = [str(round(0.05 * i, 2)) for i in range(110)]
        out = run_cli(
            capsys, "sim", "rODENet-1", "--depth", "20", "--arrivals", "trace",
            "--trace", *trace, "--replicas", "2", "--ps-cores", "2", "--json",
        )
        payload = json.loads(out)
        assert payload["requests"]["offered"] == 110

    def test_trace_arrivals(self, capsys):
        out = run_cli(
            capsys, "sim", "rODENet-3", "--depth", "20", "--arrivals", "trace",
            "--trace", "0.0", "0.5", "1.5", "--json",
        )
        payload = json.loads(out)
        assert payload["requests"]["offered"] == 3

    def test_mix_requests(self, capsys):
        out = run_cli(
            capsys, "sim", "rODENet-3", "--depth", "56", "--requests", "6",
            "--mix", "rODENet-3:56", "rODENet-1:20:0.5", "--seed", "3", "--json",
        )
        payload = json.loads(out)
        assert payload["requests"]["completed"] == 6

    @pytest.mark.parametrize(
        "argv, fragment",
        [
            (["sim", "rODENet-3", "--replicas", "many"], "--replicas"),
            (["sim", "rODENet-3", "--arrivals", "trace"], "trace"),
            (["sim", "rODENet-3", "--rate", "0"], "arrival_rate_hz"),
            (["sim", "rODENet-3", "--mix", "bogus"], "--mix"),
        ],
    )
    def test_bad_arguments_exit_cleanly(self, capsys, argv, fragment):
        assert main(argv) == 2
        err = capsys.readouterr().err
        assert "error:" in err and fragment in err


class TestSweepVerboseCache:
    def test_verbose_reports_hit_rate_on_stderr(self, capsys, tmp_path):
        args = [
            "sweep", "--engine", "batch", "--models", "rODENet-3", "--depths", "20",
            "--n-units", "8", "16", "--cache-dir", str(tmp_path / "cache"), "--verbose",
        ]
        assert main(list(args)) == 0
        cold = capsys.readouterr()
        assert "[cache]" in cold.err
        assert "0 hits / 2 misses (0.0% hit rate)" in cold.err
        assert "2 entries" in cold.err
        assert main(list(args)) == 0
        warm = capsys.readouterr()
        assert "2 hits / 0 misses (100.0% hit rate)" in warm.err

    def test_verbose_keeps_json_stdout_parseable(self, capsys, tmp_path):
        assert main([
            "sweep", "--engine", "batch", "--models", "rODENet-3", "--depths", "20",
            "--cache-dir", str(tmp_path / "cache"), "--verbose", "--format", "json",
        ]) == 0
        captured = capsys.readouterr()
        json.loads(captured.out)  # stdout stays pure JSON
        assert "[cache]" in captured.err

    def test_without_verbose_no_cache_line(self, capsys, tmp_path):
        assert main([
            "sweep", "--engine", "batch", "--models", "rODENet-3",
            "--depths", "20", "--cache-dir", str(tmp_path / "cache"),
        ]) == 0
        captured = capsys.readouterr()
        assert "[cache]" not in captured.out
        assert "[cache]" not in captured.err

"""Warm-up trimming (``warmup_s``) and per-board serving budgets."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import Evaluator, SimScenario, simulate
from repro.platform import get_board
from repro.sim.metrics import windowed_mean


def poisson_scenario(**overrides) -> SimScenario:
    base = dict(
        model="rODENet-1",
        depth=20,
        arrival="poisson",
        arrival_rate_hz=4.0,
        n_requests=40,
        replicas=1,
        seed=3,
    )
    base.update(overrides)
    return SimScenario(**base)


class TestWindowedMean:
    def test_difference_over_window(self):
        assert windowed_mean(10.0, 4.0, 3.0) == pytest.approx(2.0)

    def test_empty_window_is_nan(self):
        # A zero-width window measured nothing; 0 would read as "idle".
        assert np.isnan(windowed_mean(10.0, 4.0, 0.0))
        assert np.isnan(windowed_mean(10.0, 4.0, -1.0))


class TestWarmupTrimming:
    def test_zero_warmup_is_the_identity(self):
        ev = Evaluator()
        plain = simulate(poisson_scenario(), evaluator=ev)
        explicit = simulate(poisson_scenario(warmup_s=0.0), evaluator=ev)
        assert explicit.latency == plain.latency
        assert explicit.utilization == plain.utilization
        assert explicit.energy == plain.energy
        assert explicit.horizon_s == plain.horizon_s
        assert explicit.requests["measured"] == plain.requests["completed"]

    def test_warmup_drops_transient_requests_from_percentiles(self):
        ev = Evaluator()
        full = simulate(poisson_scenario(), evaluator=ev)
        cut = float(full.horizon_s) * 0.4
        trimmed = simulate(poisson_scenario(warmup_s=cut), evaluator=ev)
        assert trimmed.requests["offered"] == full.requests["offered"]
        assert trimmed.requests["measured"] < full.requests["measured"]
        assert trimmed.latency.count == trimmed.requests["measured"]
        # The horizon still covers the whole run; only measurement moved.
        assert trimmed.horizon_s == pytest.approx(full.horizon_s)

    def test_warmup_windows_utilisation_and_energy(self):
        ev = Evaluator()
        full = simulate(poisson_scenario(seed=11), evaluator=ev)
        cut = float(full.horizon_s) * 0.5
        trimmed = simulate(poisson_scenario(seed=11, warmup_s=cut), evaluator=ev)
        for key in ("ps", "axi", "accelerator_mean"):
            assert 0.0 <= trimmed.utilization[key] <= 1.0
        # Energy integrates over the (smaller) measurement window only.
        assert trimmed.energy["total_energy_J"] < full.energy["total_energy_J"]
        assert trimmed.energy["energy_per_request_J"] is not None

    def test_warmup_beyond_horizon_measures_nothing(self):
        ev = Evaluator()
        full = simulate(poisson_scenario(), evaluator=ev)
        report = simulate(
            poisson_scenario(warmup_s=float(full.horizon_s) + 100.0), evaluator=ev
        )
        assert report.requests["measured"] == 0
        assert report.latency.count == 0
        # Nothing measured reads as NaN (null in JSON), never as 0 rps /
        # 0 s latency, and the report says so.
        assert np.isnan(report.throughput_rps)
        assert np.isnan(report.latency.mean)
        assert report.note is not None and "warm-up" in report.note
        assert report.as_dict()["throughput_rps"] is None
        assert "[note]" in report.render()
        # Regression: the warm-up probe must not inflate the horizon — the
        # report still describes the real run, just with an empty window.
        assert report.horizon_s == pytest.approx(full.horizon_s)

    def test_warmup_trims_queue_peak_and_batch_stats(self):
        # A cold-start burst, then a quiet tail: the pre-warmup backlog peak
        # and its large batches must not leak into the trimmed report.
        ev = Evaluator()
        trace = tuple([0.0] * 10 + [20.0, 20.5])
        burst = SimScenario(
            model="rODENet-1", depth=20, arrival="trace", trace=trace,
            n_requests=None, replicas=1, policy="batched", batch_size=8,
        )
        full = simulate(burst, evaluator=ev)
        trimmed = simulate(burst.replace(warmup_s=15.0), evaluator=ev)
        assert trimmed.queue["peak_depth"] < full.queue["peak_depth"]
        assert trimmed.batch_sizes["count"] < full.batch_sizes["count"]
        assert trimmed.batch_sizes["max"] <= full.batch_sizes["max"]

    def test_contention_free_run_still_matches_the_analytic_time(self):
        # The differential guarantee survives the refactor: one request, one
        # replica, fifo => simulated latency == analytic total_w_pl_s.
        ev = Evaluator()
        scenario = SimScenario(
            model="rODENet-3", depth=56, arrival="deterministic",
            arrival_rate_hz=0.01, n_requests=1, replicas=1,
        )
        report = simulate(scenario, evaluator=ev)
        analytic = ev.evaluate(scenario.design_point).timing["total_w_pl_s"]
        assert report.latency.mean == pytest.approx(analytic, rel=1e-9)


class TestSketchRouting:
    """The nominal latency path now flows through the streaming sketch."""

    def test_report_carries_exact_sketches_on_small_runs(self):
        ev = Evaluator()
        report = simulate(poisson_scenario(), evaluator=ev)
        assert report.latency_sketch is not None and report.latency_sketch.is_exact
        assert report.latency_sketch.stats() == report.latency
        assert report.wait_sketch is not None
        assert report.wait_sketch.stats() == report.wait

    def test_exact_scenario_is_identical_and_never_spills(self):
        ev = Evaluator()
        default = simulate(poisson_scenario(), evaluator=ev)
        pinned = simulate(poisson_scenario(exact=True), evaluator=ev)
        assert pinned.latency == default.latency
        assert pinned.wait == default.wait
        assert pinned.latency_sketch.exact_threshold is None

    def test_empty_window_keeps_nan_note_and_json_null(self):
        # Regression: PR 6's NaN-not-zero empty-window semantics survive the
        # sketch routing — the [note] line renders and JSON carries null.
        ev = Evaluator()
        full = simulate(poisson_scenario(), evaluator=ev)
        report = simulate(
            poisson_scenario(warmup_s=float(full.horizon_s) + 50.0), evaluator=ev
        )
        assert report.latency_sketch.count == 0
        assert np.isnan(report.latency.mean)
        assert report.as_dict()["latency"]["mean_s"] is None
        assert report.note is not None and "[note]" in report.render()


class TestPerBoardServing:
    def test_auto_replicas_follow_the_board_budget(self):
        ev = Evaluator()
        small = simulate(poisson_scenario(replicas=0, board="PYNQ-Z2"), evaluator=ev)
        large = simulate(poisson_scenario(replicas=0, board="ZCU104"), evaluator=ev)
        assert large.scenario["replicas"] > small.scenario["replicas"]

    def test_auto_ps_cores_follow_the_board(self):
        ev = Evaluator()
        for name in ("PYNQ-Z2", "Ultra96-V2"):
            report = simulate(poisson_scenario(ps_cores=0, board=name), evaluator=ev)
            assert report.scenario["ps_cores"] == get_board(name).ps_cores

    def test_same_trace_identical_arrival_pressure_across_boards(self):
        # Identical seed + Poisson process => both boards see the same
        # offered trace; only service times and budgets differ.
        ev = Evaluator()
        a = simulate(poisson_scenario(board="PYNQ-Z2", seed=5), evaluator=ev)
        b = simulate(poisson_scenario(board="ZCU104", seed=5), evaluator=ev)
        assert a.requests["offered"] == b.requests["offered"]
        assert b.latency.mean < a.latency.mean  # faster PS + PL clocks
        assert b.service_s < a.service_s

    def test_board_energy_uses_the_board_power_profile(self):
        ev = Evaluator()
        a = simulate(poisson_scenario(board="PYNQ-Z2"), evaluator=ev)
        b = simulate(poisson_scenario(board="ZCU104"), evaluator=ev)
        # The ZU7EV board idles hotter: higher static floor per second.
        assert (b.energy["total_energy_J"] / b.horizon_s) > (
            a.energy["total_energy_J"] / a.horizon_s
        )

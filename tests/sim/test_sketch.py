"""Conformance suite for the streaming quantile sketch.

The fleet simulator replaces stored per-request latencies with
:class:`~repro.sim.metrics.QuantileSketch`; this suite is what makes that
replacement falsifiable.  Three pillars:

* **1 % relative error vs ``np.percentile``** for p50/p90/p95/p99 across
  adversarial distributions — bimodal, heavy-tail, constant, tiny (n < 5) —
  with the sketch *forced* to spill (``exact_threshold=0``), so the bound is
  exercised on the binned estimator, not the exact buffer.
* **Merge-order invariance**: shard sketches merged in any order yield
  identical quantiles (the shared-nothing fleet merge depends on this).
* **Bit-identity on the exact path**: an unspilled sketch's ``stats()``
  equals :func:`latency_stats` exactly, including the NaN-not-zero empty
  semantics from PR 6.
"""

from __future__ import annotations

import math
import pickle
import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.metrics import PERCENTILES, QuantileSketch, latency_stats

#: The conformance bar from the issue: 1 % relative error against the exact
#: oracle.  The default sketch resolution guarantees 0.5 %.
REL_TOL = 0.01

positive_values = st.floats(min_value=1e-9, max_value=1e9, allow_nan=False)
value_lists = st.lists(positive_values, min_size=1, max_size=400)


def spilled_sketch(values) -> QuantileSketch:
    """A sketch forced onto the binned path regardless of stream size."""

    sketch = QuantileSketch(exact_threshold=0)
    sketch.extend(values)
    assert not sketch.is_exact
    return sketch


def assert_within_tolerance(sketch: QuantileSketch, values) -> None:
    exact = np.percentile(np.asarray(values, dtype=np.float64), list(PERCENTILES))
    estimates = sketch.percentiles(list(PERCENTILES))
    for q, truth, est in zip(PERCENTILES, exact, estimates):
        assert est == pytest.approx(truth, rel=REL_TOL, abs=1e-12), (
            f"p{q}: sketch {est} vs exact {truth} over {len(values)} samples"
        )


class TestBinnedAccuracy:
    """The 1 % bound on the spilled (bounded-memory) estimator."""

    @settings(max_examples=300, deadline=None)
    @given(value_lists)
    def test_arbitrary_streams(self, values):
        assert_within_tolerance(spilled_sketch(values), values)

    @settings(max_examples=100, deadline=None)
    @given(
        st.lists(st.floats(min_value=1e-4, max_value=2e-4), min_size=1, max_size=100),
        st.lists(st.floats(min_value=5.0, max_value=6.0), min_size=1, max_size=100),
    )
    def test_bimodal(self, low_mode, high_mode):
        values = low_mode + high_mode
        assert_within_tolerance(spilled_sketch(values), values)

    def test_heavy_tail(self):
        rng = np.random.default_rng(7)
        values = np.exp(rng.normal(loc=-6.0, scale=2.5, size=20_000))  # lognormal
        assert_within_tolerance(spilled_sketch(values), values)

    def test_pareto_tail_spanning_six_decades(self):
        rng = np.random.default_rng(11)
        values = 1e-4 * (1.0 + rng.pareto(0.6, size=10_000))
        assert_within_tolerance(spilled_sketch(values), values)

    @settings(max_examples=100, deadline=None)
    @given(positive_values, st.integers(min_value=1, max_value=500))
    def test_constant_stream_is_exact(self, value, n):
        sketch = spilled_sketch([value] * n)
        for estimate in sketch.percentiles(list(PERCENTILES)):
            assert estimate == value

    @settings(max_examples=200, deadline=None)
    @given(st.lists(positive_values, min_size=1, max_size=4))
    def test_tiny_streams(self, values):
        # n < 5: every percentile interpolates between just-inserted samples.
        assert_within_tolerance(spilled_sketch(values), values)

    def test_interpolation_matches_numpy_semantics(self):
        # The adversarial case for naive bin quantiles: p90 of [1,1,1,1000]
        # is an interpolation (699.3...), not a bin edge.
        values = [1.0, 1.0, 1.0, 1000.0]
        truth = float(np.percentile(values, 90))
        est = spilled_sketch(values).percentile(90)
        assert est == pytest.approx(truth, rel=REL_TOL)

    def test_extremes_are_exact(self):
        values = [3.7, 0.002, 81.0, 0.5]
        sketch = spilled_sketch(values)
        assert sketch.percentile(0) == min(values)
        assert sketch.percentile(100) == max(values)
        stats = sketch.stats()
        assert stats.minimum == min(values)
        assert stats.maximum == max(values)
        assert stats.mean == pytest.approx(np.mean(values), rel=1e-12)

    def test_zeros_are_representable(self):
        values = [0.0] * 10 + [1.0] * 10
        sketch = spilled_sketch(values)
        assert sketch.percentile(10) == 0.0
        assert sketch.percentile(95) == pytest.approx(1.0, rel=REL_TOL)

    def test_bounded_memory(self):
        rng = np.random.default_rng(3)
        sketch = QuantileSketch(exact_threshold=256)
        sketch.extend(np.exp(rng.normal(size=50_000)))
        assert not sketch.is_exact
        assert sketch.samples is None
        # Log-spaced bins over a lognormal: a few hundred, not 50k samples.
        assert sketch.bins_used < 5_000


class TestMergeInvariance:
    @settings(max_examples=150, deadline=None)
    @given(
        st.lists(st.lists(positive_values, min_size=0, max_size=60), min_size=2, max_size=6),
        st.randoms(use_true_random=False),
    )
    def test_merge_order_does_not_change_quantiles(self, shards, rnd):
        def merged(order):
            total = QuantileSketch(exact_threshold=0)
            for i in order:
                shard = spilled_sketch(shards[i]) if shards[i] else QuantileSketch(
                    exact_threshold=0
                )
                total.merge(shard)
            return total

        forward = list(range(len(shards)))
        shuffled = forward[:]
        rnd.shuffle(shuffled)
        a = merged(forward).percentiles(list(PERCENTILES))
        b = merged(shuffled).percentiles(list(PERCENTILES))
        assert a == b or (all(math.isnan(x) for x in a) and all(math.isnan(x) for x in b))

    @settings(max_examples=100, deadline=None)
    @given(st.lists(st.lists(positive_values, min_size=1, max_size=50), min_size=2, max_size=5))
    def test_merged_sketch_tracks_the_concatenated_stream(self, shards):
        values = [v for shard in shards for v in shard]
        total = QuantileSketch(exact_threshold=0)
        for shard in shards:
            total.merge(spilled_sketch(shard))
        assert total.count == len(values)
        assert_within_tolerance(total, values)

    def test_exact_shards_merge_exactly(self):
        a = QuantileSketch()
        a.extend([1.0, 5.0])
        b = QuantileSketch()
        b.extend([2.0, 9.0])
        merged = a.merge(b)
        assert merged.is_exact
        assert merged.stats() == latency_stats([1.0, 5.0, 2.0, 9.0])

    def test_merging_past_the_threshold_spills(self):
        a = QuantileSketch(exact_threshold=3)
        a.extend([1.0, 2.0])
        b = QuantileSketch(exact_threshold=3)
        b.extend([3.0, 4.0])
        assert not a.merge(b).is_exact

    def test_exact_flag_never_spills_on_merge_of_exact_shards(self):
        a = QuantileSketch(exact=True)
        a.extend(range(1, 10_001))
        b = QuantileSketch(exact=True)
        b.extend(range(1, 10_001))
        assert a.merge(b).is_exact

    def test_incompatible_resolutions_rejected(self):
        with pytest.raises(ValueError, match="resolution"):
            QuantileSketch().merge(QuantileSketch(relative_error=0.1))

    def test_merge_leaves_the_donor_untouched(self):
        donor = spilled_sketch([1.0, 2.0, 3.0])
        before = donor.percentiles(list(PERCENTILES))
        QuantileSketch(exact_threshold=0).merge(donor)
        assert donor.count == 3
        assert donor.percentiles(list(PERCENTILES)) == before


class TestExactPath:
    @settings(max_examples=200, deadline=None)
    @given(st.lists(positive_values, min_size=1, max_size=200))
    def test_stats_bit_identical_to_latency_stats(self, values):
        sketch = QuantileSketch()  # default threshold far above 200
        sketch.extend(values)
        assert sketch.is_exact
        assert sketch.stats() == latency_stats(values)

    def test_exact_true_never_spills(self):
        sketch = QuantileSketch(exact=True, exact_threshold=8)
        sketch.extend(float(i) for i in range(1, 100_000))
        assert sketch.is_exact
        assert sketch.count == 99_999

    def test_empty_sketch_is_nan_not_zero(self):
        stats = QuantileSketch().stats()
        assert stats.count == 0
        assert math.isnan(stats.mean)
        assert all(math.isnan(v) for v in stats.percentiles.values())
        assert all(math.isnan(v) for v in QuantileSketch(exact_threshold=0).percentiles([50]))

    def test_rejects_invalid_samples(self):
        sketch = QuantileSketch()
        for bad in (-1.0, float("nan"), float("inf")):
            with pytest.raises(ValueError, match="finite and non-negative"):
                sketch.insert(bad)

    def test_sketches_pickle_roundtrip(self):
        # Shard results cross process boundaries; both paths must survive.
        for sketch in (QuantileSketch(), spilled_sketch([0.5, 1.5, 2.5])):
            sketch.insert(1.0)
            clone = pickle.loads(pickle.dumps(sketch))
            assert clone.count == sketch.count
            assert clone.percentiles([50, 99]) == sketch.percentiles([50, 99])

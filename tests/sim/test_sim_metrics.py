"""Tests of latency statistics, energy accounting and report serialisation."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.fpga.device import ResourceVector
from repro.fpga.power import PowerModelConfig
from repro.sim import SimScenario, energy_summary, latency_stats, simulate


class TestLatencyStats:
    def test_matches_numpy_percentiles(self):
        rng = np.random.default_rng(5)
        samples = list(rng.exponential(1.0, size=500))
        stats = latency_stats(samples)
        assert stats.count == 500
        assert stats.mean == pytest.approx(np.mean(samples))
        for q in (50, 90, 95, 99):
            assert stats.percentiles[q] == pytest.approx(np.percentile(samples, q))
        assert stats.minimum == min(samples)
        assert stats.maximum == max(samples)

    def test_empty_samples_are_nan_not_zero(self):
        # "No data" must be distinguishable from "zero latency": every
        # statistic is NaN, and SimReport.as_dict maps it to JSON null.
        stats = latency_stats([])
        assert stats.count == 0
        assert np.isnan(stats.mean)
        assert np.isnan(stats.as_dict()["p95_s"])


class TestEnergySummary:
    def test_single_core_matches_analytic_split(self):
        cfg = PowerModelConfig()
        res = ResourceVector(bram=140, dsp=68, lut=1000, ff=1000)
        out = energy_summary(
            horizon_s=10.0,
            ps_busy_core_seconds=6.0,
            ps_cores=1,
            replica_resources=res,
            n_replicas=1,
            completed=5,
            config=cfg,
        )
        expected_ps = cfg.ps_active_w * 6.0 + cfg.ps_idle_w * 4.0
        assert out["ps_energy_J"] == pytest.approx(expected_ps)
        pl_w = (
            cfg.pl_static_w
            + cfg.pl_dynamic_base_w
            + cfg.pl_dynamic_per_dsp_w * 68
            + cfg.pl_dynamic_per_bram_w * 140
        )
        assert out["pl_energy_J"] == pytest.approx(pl_w * 10.0)
        assert out["total_energy_J"] == pytest.approx(out["ps_energy_J"] + out["pl_energy_J"])
        assert out["energy_per_request_J"] == pytest.approx(out["total_energy_J"] / 5)

    def test_replicas_scale_pl_energy(self):
        res = ResourceVector(bram=10, dsp=10, lut=0, ff=0)
        one = energy_summary(5.0, 1.0, 1, res, 1, 1)
        two = energy_summary(5.0, 1.0, 1, res, 2, 1)
        assert two["pl_energy_J"] == pytest.approx(2 * one["pl_energy_J"])


class TestSimReport:
    @pytest.fixture(scope="class")
    def report(self):
        return simulate(
            SimScenario(
                model="rODENet-3",
                depth=20,
                arrival="poisson",
                arrival_rate_hz=3.0,
                n_requests=20,
                replicas=2,
                policy="batched",
                seed=4,
            )
        )

    def test_as_dict_is_json_serialisable(self, report):
        payload = json.loads(json.dumps(report.as_dict()))
        for key in ("scenario", "requests", "latency", "utilization", "energy",
                    "throughput_rps", "horizon_s", "queue", "bus"):
            assert key in payload
        assert payload["requests"]["completed"] == 20
        assert payload["latency"]["p95_s"] > 0
        assert 0.0 <= payload["utilization"]["ps"] <= 1.0
        assert len(payload["utilization"]["accelerators"]) == 2

    def test_flat_dict_is_scalar(self, report):
        row = report.flat_dict()
        assert all(not isinstance(v, (list, dict)) for v in row.values())
        assert row["completed"] == 20
        assert "latency_p95_s" in row

    def test_csv_round_trip(self, report):
        text = report.to_csv()
        header, data = text.splitlines()
        assert len(header.split(",")) == len(data.split(","))
        assert "latency_p95_s" in header.split(",")

    def test_render_mentions_key_sections(self, report):
        text = report.render()
        for token in ("[requests]", "[latency]", "[utilization]", "[queue]", "[energy]"):
            assert token in text

    def test_utilizations_are_fractions(self, report):
        util = report.utilization
        assert 0.0 <= util["axi"] <= 1.0
        assert all(0.0 <= u <= 1.0 for u in util["accelerators"])
        assert 0.0 <= util["accelerator_mean"] <= 1.0

"""Tests for the paper's training schedule."""

from __future__ import annotations

import pytest

from repro.nn.layers import Parameter
from repro.train import PaperTrainingSchedule, make_paper_optimizer

import numpy as np


class TestPaperSchedule:
    def test_defaults_match_section_43(self):
        s = PaperTrainingSchedule()
        assert s.epochs == 200
        assert s.base_lr == 0.01
        assert s.weight_decay == 1e-4
        assert s.milestones == (100, 150)
        assert s.gamma == 0.1

    def test_scaled_schedule_preserves_shape(self):
        s = PaperTrainingSchedule().scaled(0.1)
        assert s.epochs == 20
        assert s.milestones == (10, 15)
        assert s.base_lr == 0.01  # LR magnitudes are not scaled

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            PaperTrainingSchedule().scaled(0.0)

    def test_scaled_minimum_one_epoch(self):
        s = PaperTrainingSchedule().scaled(0.001)
        assert s.epochs >= 1
        assert all(m >= 1 for m in s.milestones)


class TestMakePaperOptimizer:
    def test_optimizer_configuration(self):
        params = [Parameter(np.zeros(3))]
        optimizer, scheduler = make_paper_optimizer(params)
        assert optimizer.lr == 0.01
        assert optimizer.weight_decay == 1e-4
        assert scheduler.milestones == [100, 150]

    def test_lr_trajectory_matches_paper(self):
        params = [Parameter(np.zeros(1))]
        optimizer, scheduler = make_paper_optimizer(params)
        trajectory = {}
        for epoch in range(1, 201):
            trajectory[epoch] = optimizer.lr
            scheduler.step()
        assert trajectory[99] == pytest.approx(0.01)
        assert trajectory[101] == pytest.approx(0.001)
        assert trajectory[151] == pytest.approx(0.0001)

    def test_custom_schedule_respected(self):
        params = [Parameter(np.zeros(1))]
        schedule = PaperTrainingSchedule(base_lr=0.5, milestones=(2,), weight_decay=0.0)
        optimizer, scheduler = make_paper_optimizer(params, schedule)
        assert optimizer.lr == 0.5
        scheduler.step(), scheduler.step()
        assert optimizer.lr == pytest.approx(0.05)

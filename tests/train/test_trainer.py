"""Functional tests for the training loop (small synthetic data)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.core import build_network
from repro.train import PaperTrainingSchedule, Trainer, evaluate


def _linear_probe(num_classes: int, image_shape):
    """A tiny model that trains in a few seconds on the tiny dataset."""

    channels, size, _ = image_shape
    rng = np.random.default_rng(0)
    return nn.Sequential(
        nn.Conv2d(channels, 4, 3, 1, 1, rng=rng),
        nn.BatchNorm2d(4),
        nn.ReLU(),
        nn.GlobalAvgPool2d(),
        nn.Linear(4, num_classes, rng=rng),
    )


@pytest.fixture(scope="module")
def short_schedule():
    return PaperTrainingSchedule(epochs=3, base_lr=0.05, milestones=(2,), batch_size=16)


class TestTrainer:
    def test_loss_decreases_on_tiny_dataset(self, tiny_split, short_schedule):
        train_set, test_set = tiny_split
        model = _linear_probe(train_set.num_classes, train_set.image_shape)
        trainer = Trainer(model, train_set, test_set, schedule=short_schedule, seed=0)
        history = trainer.fit()
        assert len(history) == 3
        assert history.improved()

    def test_history_records_lr_and_test_metrics(self, tiny_split, short_schedule):
        train_set, test_set = tiny_split
        model = _linear_probe(train_set.num_classes, train_set.image_shape)
        trainer = Trainer(model, train_set, test_set, schedule=short_schedule)
        history = trainer.fit()
        first = history.epochs[0]
        assert first.learning_rate == pytest.approx(0.05)
        assert first.test_accuracy is not None
        # LR must have dropped after the milestone at epoch 2.
        assert history.epochs[-1].learning_rate < first.learning_rate

    def test_epoch_callback_invoked(self, tiny_split, short_schedule):
        train_set, _ = tiny_split
        seen = []
        model = _linear_probe(train_set.num_classes, train_set.image_shape)
        trainer = Trainer(
            model, train_set, schedule=short_schedule, on_epoch_end=lambda m: seen.append(m.epoch)
        )
        trainer.fit(epochs=2)
        assert seen == [1, 2]

    def test_explicit_epoch_count_overrides_schedule(self, tiny_split, short_schedule):
        train_set, _ = tiny_split
        model = _linear_probe(train_set.num_classes, train_set.image_shape)
        history = Trainer(model, train_set, schedule=short_schedule).fit(epochs=1)
        assert len(history) == 1

    def test_evaluate_returns_loss_and_accuracy(self, tiny_split):
        train_set, test_set = tiny_split
        model = _linear_probe(train_set.num_classes, train_set.image_shape)
        loss, acc = evaluate(model, test_set)
        assert loss > 0
        assert 0.0 <= acc <= 1.0

    def test_variant_network_trains_through_trainer(self, tiny_split):
        """The real rODENet-3 architecture (reduced width) goes through the
        same training path and improves on the tiny dataset."""

        train_set, _ = tiny_split
        model = build_network(
            "rODENet-3", 20, num_classes=train_set.num_classes, base_width=4, seed=0
        )
        schedule = PaperTrainingSchedule(epochs=2, base_lr=0.05, milestones=(10,), batch_size=16)
        trainer = Trainer(model, train_set, schedule=schedule, seed=1)
        history = trainer.fit()
        assert history.improved()

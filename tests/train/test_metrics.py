"""Tests for the training metrics bookkeeping."""

from __future__ import annotations

import numpy as np
import pytest

from repro.train import EpochMetrics, RunningAverage, TrainingHistory


class TestRunningAverage:
    def test_empty_average_is_zero(self):
        assert RunningAverage().average == 0.0

    def test_weighted_average(self):
        avg = RunningAverage()
        avg.update(1.0, weight=10)
        avg.update(2.0, weight=30)
        assert avg.average == pytest.approx(1.75)

    def test_single_update(self):
        avg = RunningAverage()
        avg.update(3.5)
        assert avg.average == 3.5


class TestEpochMetrics:
    def test_as_dict_includes_optional_fields_only_when_present(self):
        minimal = EpochMetrics(epoch=1, train_loss=2.0, train_accuracy=0.1)
        assert "test_loss" not in minimal.as_dict()
        full = EpochMetrics(1, 2.0, 0.1, test_loss=1.5, test_accuracy=0.2, learning_rate=0.01)
        d = full.as_dict()
        assert d["test_accuracy"] == 0.2 and d["learning_rate"] == 0.01


class TestTrainingHistory:
    def _history(self):
        h = TrainingHistory()
        for i, (loss, acc) in enumerate([(2.0, 0.2), (1.5, 0.4), (1.0, 0.6)], start=1):
            h.append(EpochMetrics(i, loss, acc, test_accuracy=acc - 0.05))
        return h

    def test_len_iter_final(self):
        h = self._history()
        assert len(h) == 3
        assert h.final.epoch == 3
        assert [e.epoch for e in h] == [1, 2, 3]

    def test_best_test_accuracy(self):
        assert self._history().best_test_accuracy == pytest.approx(0.55)

    def test_series_extraction(self):
        series = self._history().series("train_loss")
        np.testing.assert_allclose(series, [2.0, 1.5, 1.0])

    def test_series_missing_key_is_nan(self):
        h = TrainingHistory()
        h.append(EpochMetrics(1, 1.0, 0.5))
        assert np.isnan(h.series("test_loss")[0])

    def test_improved(self):
        assert self._history().improved()
        assert not TrainingHistory().improved()

    def test_empty_history_final_raises(self):
        with pytest.raises(ValueError):
            TrainingHistory().final

    def test_empty_best_accuracy_raises(self):
        h = TrainingHistory()
        h.append(EpochMetrics(1, 1.0, 0.5))
        with pytest.raises(ValueError):
            h.best_test_accuracy

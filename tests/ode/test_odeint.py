"""Tests for the public odeint / odesolve API."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import Tensor
from repro.nn.layers import Parameter
from repro.ode import odeint, odesolve


def decay(z, t):
    return -z


class TestOdesolve:
    def test_default_single_step_is_euler_block(self):
        z1 = odesolve(decay, np.array([1.0]), 0.0, 1.0)
        assert z1[0] == pytest.approx(0.0)  # 1 + 1*(-1)

    def test_num_steps(self):
        z1 = odesolve(decay, np.array([1.0]), 0.0, 1.0, num_steps=1000)
        assert z1[0] == pytest.approx(np.exp(-1), rel=1e-3)

    def test_step_size(self):
        z1 = odesolve(decay, np.array([1.0]), 0.0, 1.0, method="rk4", step_size=0.1)
        assert z1[0] == pytest.approx(np.exp(-1), rel=1e-6)

    def test_num_steps_and_step_size_mutually_exclusive(self):
        with pytest.raises(ValueError):
            odesolve(decay, np.array([1.0]), 0.0, 1.0, num_steps=2, step_size=0.5)

    def test_tensor_input_records_graph(self):
        z0 = Tensor(np.array([2.0]), requires_grad=True)
        z1 = odesolve(decay, z0, 0.0, 1.0, method="euler", num_steps=10)
        assert isinstance(z1, Tensor)
        z1.sum().backward()
        # d z1 / d z0 = (1 - h)^10 with h = 0.1
        assert z0.grad[0] == pytest.approx((1 - 0.1) ** 10, rel=1e-10)


class TestOdeint:
    def test_trajectory_shape(self):
        times = [0.0, 0.5, 1.0, 1.5]
        out = odeint(decay, np.array([1.0, 2.0]), times, method="rk4", steps_per_interval=20)
        assert out.shape == (4, 2)
        np.testing.assert_allclose(out[0], [1.0, 2.0])

    def test_values_match_analytic(self):
        times = np.linspace(0, 2, 5)
        out = odeint(decay, np.array([1.0]), times, method="rk4", steps_per_interval=50)
        np.testing.assert_allclose(out[:, 0], np.exp(-times), rtol=1e-6)

    def test_decreasing_times_supported(self):
        times = [1.0, 0.5, 0.0]
        out = odeint(decay, np.array([np.exp(-1.0)]), times, method="rk4", steps_per_interval=50)
        assert out[-1, 0] == pytest.approx(1.0, rel=1e-6)

    def test_non_monotonic_times_rejected(self):
        with pytest.raises(ValueError, match="monotonic"):
            odeint(decay, np.array([1.0]), [0.0, 1.0, 0.5])

    def test_single_time_rejected(self):
        with pytest.raises(ValueError):
            odeint(decay, np.array([1.0]), [0.0])

    def test_tensor_trajectory_gradients(self):
        w = Parameter(np.array([[-0.5]]))

        def dyn(z, t):
            return z @ w.T

        z0 = Tensor(np.array([[1.0]]), requires_grad=True)
        traj = odeint(dyn, z0, [0.0, 1.0], method="euler", steps_per_interval=10)
        assert isinstance(traj, Tensor)
        traj[-1].sum().backward()
        assert z0.grad is not None and w.grad is not None
        assert z0.grad[0, 0] == pytest.approx((1 - 0.05) ** 10, rel=1e-6)

    def test_adaptive_method_rejects_tensor(self):
        with pytest.raises(TypeError):
            odeint(decay, Tensor(np.array([1.0])), [0.0, 1.0], method="rk45")

    def test_adaptive_method_matches_fixed_grid(self):
        times = [0.0, 1.0]
        adaptive = odeint(decay, np.array([1.0]), times, method="rk45")
        fixed = odeint(decay, np.array([1.0]), times, method="rk4", steps_per_interval=100)
        np.testing.assert_allclose(adaptive[-1], fixed[-1], rtol=1e-5)

"""Tests for adjoint-method gradients (Equations 7–9 of the paper)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import Tensor
from repro.nn.layers import Parameter
from repro.ode import adjoint_backward, get_solver, odeint_adjoint, vjp


class LinearDynamics:
    """dz/dt = z @ A.T with a trainable matrix A."""

    def __init__(self, A: np.ndarray) -> None:
        self.A = Parameter(A)

    def __call__(self, z, t):
        return z @ self.A.T

    @property
    def params(self):
        return [self.A]


@pytest.fixture
def linear_setup():
    A = np.array([[-0.5, 0.3], [0.1, -0.8]])
    dyn = LinearDynamics(A)
    z0 = np.array([[1.0, 2.0]])
    return dyn, z0


def _forward(dyn, z0, t0, t1, steps, method="rk4"):
    solver = get_solver(method)
    return solver.integrate(lambda z, t: z @ dyn.A.data.T, z0.copy(), t0, t1, steps)


class TestVjp:
    def test_returns_function_value_and_products(self, linear_setup):
        dyn, z0 = linear_setup
        a = np.array([[1.0, 1.0]])
        f_val, grad_z, grad_params = vjp(dyn, z0, 0.0, a, dyn.params)
        np.testing.assert_allclose(f_val, z0 @ dyn.A.data.T)
        # a^T df/dz = a @ A
        np.testing.assert_allclose(grad_z, a @ dyn.A.data)
        assert grad_params[0].shape == dyn.A.data.shape

    def test_does_not_pollute_parameter_grads(self, linear_setup):
        dyn, z0 = linear_setup
        dyn.A.grad = np.full_like(dyn.A.data, 7.0)
        vjp(dyn, z0, 0.0, np.ones_like(z0), dyn.params)
        np.testing.assert_allclose(dyn.A.grad, 7.0)


class TestAdjointBackward:
    def test_reconstructs_initial_state(self, linear_setup):
        dyn, z0 = linear_setup
        z1 = _forward(dyn, z0, 0.0, 1.0, 80)
        z0_rec, _, _ = adjoint_backward(
            dyn, z1, np.ones_like(z1), 0.0, 1.0, 80, dyn.params, solver=get_solver("rk4")
        )
        np.testing.assert_allclose(z0_rec, z0, rtol=1e-4)

    def test_gradients_match_finite_differences(self, linear_setup):
        dyn, z0 = linear_setup
        steps = 60
        z1 = _forward(dyn, z0, 0.0, 1.0, steps)
        _, grad_z0, (grad_A,) = adjoint_backward(
            dyn, z1, np.ones_like(z1), 0.0, 1.0, steps, dyn.params, solver=get_solver("rk4")
        )

        def loss():
            return float(_forward(dyn, z0, 0.0, 1.0, steps).sum())

        eps = 1e-6
        for idx in [(0, 0), (0, 1), (1, 1)]:
            orig = dyn.A.data[idx]
            dyn.A.data[idx] = orig + eps
            fp = loss()
            dyn.A.data[idx] = orig - eps
            fm = loss()
            dyn.A.data[idx] = orig
            assert grad_A[idx] == pytest.approx((fp - fm) / (2 * eps), rel=1e-4, abs=1e-7)

        for j in range(2):
            orig = z0[0, j]
            z0[0, j] = orig + eps
            fp = loss()
            z0[0, j] = orig - eps
            fm = loss()
            z0[0, j] = orig
            assert grad_z0[0, j] == pytest.approx((fp - fm) / (2 * eps), rel=1e-4)


class TestOdeintAdjoint:
    def test_forward_matches_plain_solver(self, linear_setup):
        dyn, z0 = linear_setup
        out = odeint_adjoint(dyn, Tensor(z0), 0.0, 1.0, 50, dyn.params, method="rk4")
        expected = _forward(dyn, z0, 0.0, 1.0, 50)
        np.testing.assert_allclose(out.data, expected, rtol=1e-12)

    def test_gradients_accumulate_into_parameters(self, linear_setup):
        dyn, z0 = linear_setup
        z0_t = Tensor(z0, requires_grad=True)
        out = odeint_adjoint(dyn, z0_t, 0.0, 1.0, 50, dyn.params, method="rk4")
        out.sum().backward()
        assert dyn.A.grad is not None and np.any(dyn.A.grad != 0)
        assert z0_t.grad is not None and np.any(z0_t.grad != 0)

    def test_adjoint_matches_backprop_through_solver(self, linear_setup):
        """The adjoint gradient agrees with unrolled backpropagation."""

        dyn, z0 = linear_setup
        steps = 40

        # Backprop through the unrolled Euler solver.
        z0_bp = Tensor(z0.copy(), requires_grad=True)
        solver = get_solver("euler")
        out_bp = solver.integrate(lambda z, t: z @ dyn.A.T, z0_bp, 0.0, 1.0, steps)
        out_bp.sum().backward()
        grad_A_bp = dyn.A.grad.copy()
        grad_z0_bp = z0_bp.grad.copy()
        dyn.A.grad = None

        # Adjoint method on the same grid.
        z0_adj = Tensor(z0.copy(), requires_grad=True)
        out_adj = odeint_adjoint(dyn, z0_adj, 0.0, 1.0, steps, dyn.params, method="euler")
        out_adj.sum().backward()

        np.testing.assert_allclose(out_adj.data, out_bp.data, rtol=1e-12)
        # Euler forward + Euler adjoint differ by O(h) discretisation error.
        np.testing.assert_allclose(dyn.A.grad, grad_A_bp, rtol=0.05)
        np.testing.assert_allclose(z0_adj.grad, grad_z0_bp, rtol=0.05)

    def test_memory_constant_flag(self, linear_setup):
        """The adjoint output has no stored parents beyond (z0, params)."""

        dyn, z0 = linear_setup
        out = odeint_adjoint(dyn, Tensor(z0, requires_grad=True), 0.0, 1.0, 100, dyn.params)
        assert len(out._parents) == 1 + len(dyn.params)

"""Tests for the fixed-grid ODE solvers (Euler / midpoint / Heun / RK4)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ode import (
    EULER,
    HEUN,
    MIDPOINT,
    RK4,
    available_methods,
    get_solver,
    solver_order,
    steps_for_interval,
)


def exponential_decay(z, t):
    return -z


def linear_system(A):
    return lambda z, t: A @ z


class TestSolverRegistry:
    def test_available_methods(self):
        methods = available_methods()
        for name in ("euler", "midpoint", "heun", "rk4", "rk2"):
            assert name in methods

    def test_get_solver_case_insensitive(self):
        assert get_solver("Euler").name == "euler"
        assert get_solver("RK4").name == "rk4"

    def test_unknown_method_raises(self):
        with pytest.raises(ValueError, match="unknown ODE solver"):
            get_solver("dormand")

    def test_orders(self):
        assert solver_order("euler") == 1
        assert solver_order("midpoint") == 2
        assert solver_order("heun") == 2
        assert solver_order("rk4") == 4

    def test_stages_per_step(self):
        assert get_solver("euler").stages_per_step == 1
        assert get_solver("midpoint").stages_per_step == 2
        assert get_solver("rk4").stages_per_step == 4

    def test_tableau_consistency(self):
        # Each tableau's b weights must sum to one (consistency condition).
        for tab in (EULER, MIDPOINT, HEUN, RK4):
            assert sum(tab.b) == pytest.approx(1.0)
            assert len(tab.a) == tab.stages
            assert len(tab.c) == tab.stages


class TestAccuracy:
    def test_euler_single_step_matches_formula(self):
        # z1 = z0 + h f(z0): the paper's Equation 5.
        solver = get_solver("euler")
        z1 = solver.integrate(exponential_decay, np.array([2.0]), 0.0, 0.5, 1)
        assert z1[0] == pytest.approx(2.0 + 0.5 * (-2.0))

    @pytest.mark.parametrize("method,expected_tol", [("euler", 2e-3), ("midpoint", 1e-5), ("heun", 1e-5), ("rk4", 1e-10)])
    def test_exponential_decay_accuracy(self, method, expected_tol):
        z1 = get_solver(method).integrate(exponential_decay, np.array([1.0]), 0.0, 1.0, 100)
        assert abs(z1[0] - np.exp(-1.0)) < expected_tol

    @pytest.mark.parametrize("method", ["euler", "midpoint", "heun", "rk4"])
    def test_convergence_order(self, method):
        """Halving the step size reduces the error by ~2^order."""

        order = solver_order(method)
        solver = get_solver(method)
        exact = np.exp(-1.0)
        errors = []
        for steps in (20, 40):
            z1 = solver.integrate(exponential_decay, np.array([1.0]), 0.0, 1.0, steps)
            errors.append(abs(z1[0] - exact))
        ratio = errors[0] / errors[1]
        assert ratio == pytest.approx(2 ** order, rel=0.25)

    def test_linear_system_matches_matrix_exponential(self):
        A = np.array([[0.0, 1.0], [-1.0, 0.0]])  # rotation
        z0 = np.array([1.0, 0.0])
        z1 = get_solver("rk4").integrate(linear_system(A), z0, 0.0, np.pi / 2, 200)
        np.testing.assert_allclose(z1, [0.0, -1.0], atol=1e-6)

    def test_backward_integration(self):
        """Integrating forward then backward returns to the start (RK4)."""

        solver = get_solver("rk4")
        z0 = np.array([1.0, -0.5])
        A = np.array([[-0.3, 0.2], [0.1, -0.4]])
        z1 = solver.integrate(linear_system(A), z0, 0.0, 2.0, 100)
        back = solver.integrate(linear_system(A), z1, 2.0, 0.0, 100)
        np.testing.assert_allclose(back, z0, atol=1e-6)

    def test_trajectory_recording(self):
        solver = get_solver("euler")
        z1, traj = solver.integrate(
            exponential_decay, np.array([1.0]), 0.0, 1.0, 10, return_trajectory=True
        )
        assert len(traj) == 11
        np.testing.assert_allclose(traj[-1], z1)
        # The trajectory must be monotonically decreasing for decay dynamics.
        values = [t[0] for t in traj]
        assert all(a > b for a, b in zip(values, values[1:]))

    def test_invalid_num_steps(self):
        with pytest.raises(ValueError):
            get_solver("euler").integrate(exponential_decay, np.array([1.0]), 0.0, 1.0, 0)


class TestResNetCorrespondence:
    def test_euler_m_steps_equals_m_residual_blocks(self):
        """Section 2.3: M Euler steps with h=1 == M ResNet residual additions."""

        rng = np.random.default_rng(0)
        W = rng.normal(scale=0.1, size=(4, 4))

        def f(z, t):
            return np.tanh(z @ W.T)

        z0 = rng.normal(size=(1, 4))
        m = 5
        # ResNet-style explicit unrolling.
        z_resnet = z0.copy()
        for _ in range(m):
            z_resnet = z_resnet + f(z_resnet, 0.0)
        # ODESolve with Euler, step size 1 over [0, M].
        z_ode = get_solver("euler").integrate(f, z0, 0.0, float(m), m)
        np.testing.assert_allclose(z_ode, z_resnet, rtol=1e-12)


class TestStepsForInterval:
    def test_basic(self):
        assert steps_for_interval(0.0, 1.0, 0.1) == 10
        assert steps_for_interval(1.0, 0.0, 0.25) == 4

    def test_minimum_one_step(self):
        assert steps_for_interval(0.0, 0.01, 1.0) == 1

    def test_invalid_step_size(self):
        with pytest.raises(ValueError):
            steps_for_interval(0.0, 1.0, 0.0)

    @given(st.floats(0.1, 10.0), st.floats(0.01, 1.0))
    @settings(max_examples=30, deadline=None)
    def test_step_count_covers_interval(self, span, step):
        steps = steps_for_interval(0.0, span, step)
        assert steps >= 1
        # The implied step size is within a factor ~2 of the request.
        implied = span / steps
        assert implied <= 2 * step + 1e-9

"""Tests for the adaptive (embedded Runge–Kutta) solvers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ode import adaptive_integrate, dopri5, heun_euler


def decay(z, t):
    return -z


def stiff_ish(z, t):
    return -50.0 * (z - np.cos(t))


class TestAdaptiveSolvers:
    def test_dopri5_accuracy(self):
        result = dopri5(rtol=1e-8, atol=1e-10).integrate(decay, np.array([1.0]), 0.0, 1.0)
        assert result.y[0] == pytest.approx(np.exp(-1.0), rel=1e-7)

    def test_heun_euler_accuracy(self):
        result = heun_euler(rtol=1e-6, atol=1e-8).integrate(decay, np.array([1.0]), 0.0, 1.0)
        assert result.y[0] == pytest.approx(np.exp(-1.0), rel=1e-4)

    def test_tighter_tolerance_uses_more_steps(self):
        loose = dopri5(rtol=1e-3, atol=1e-5).integrate(stiff_ish, np.array([0.0]), 0.0, 1.0)
        tight = dopri5(rtol=1e-9, atol=1e-11).integrate(stiff_ish, np.array([0.0]), 0.0, 1.0)
        assert tight.num_steps > loose.num_steps

    def test_function_evaluations_counted(self):
        result = dopri5().integrate(decay, np.array([1.0]), 0.0, 1.0)
        assert result.num_function_evals == (result.num_steps + result.num_rejected) * 7

    def test_zero_span_is_noop(self):
        result = dopri5().integrate(decay, np.array([3.0]), 1.0, 1.0)
        assert result.num_steps == 0
        assert result.y[0] == 3.0

    def test_backward_integration(self):
        result = dopri5().integrate(decay, np.array([np.exp(-1.0)]), 1.0, 0.0)
        assert result.y[0] == pytest.approx(1.0, rel=1e-6)

    def test_recording_trajectory(self):
        result = dopri5().integrate(decay, np.array([1.0]), 0.0, 1.0, record=True)
        assert len(result.times) == result.num_steps + 1
        assert result.times[0] == 0.0
        assert result.times[-1] == pytest.approx(1.0)
        values = [s[0] for s in result.states]
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_max_steps_guard(self):
        solver = dopri5(rtol=1e-13, atol=1e-15)
        solver.max_steps = 5
        with pytest.raises(RuntimeError, match="maximum number of steps"):
            solver.integrate(stiff_ish, np.array([0.0]), 0.0, 10.0)

    def test_adaptive_integrate_name_dispatch(self):
        r1 = adaptive_integrate(decay, np.array([1.0]), 0.0, 1.0, method="rk45")
        r2 = adaptive_integrate(decay, np.array([1.0]), 0.0, 1.0, method="rk12")
        assert r1.y[0] == pytest.approx(r2.y[0], rel=1e-3)
        with pytest.raises(ValueError):
            adaptive_integrate(decay, np.array([1.0]), 0.0, 1.0, method="bogus")

    def test_step_count_scales_with_dynamics_speed(self):
        slow = dopri5().integrate(decay, np.array([1.0]), 0.0, 1.0)
        fast = dopri5().integrate(lambda z, t: -40 * z, np.array([1.0]), 0.0, 1.0)
        assert fast.num_steps > slow.num_steps

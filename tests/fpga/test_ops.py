"""Tests for the bit-accurate fixed-point hardware operators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.fixedpoint import FxArray, Q20
from repro.fpga.ops import hw_batch_norm, hw_conv2d, hw_relu, hw_residual_add
from repro.nn import Tensor
from repro.nn import functional as F
from repro.nn.layers import Parameter


def _float_conv_single_image(x, w, stride=1, padding=1):
    out = F.conv2d(Tensor(x[None, ...]), Tensor(w), stride=stride, padding=padding)
    return out.data[0]


class TestHwConv2d:
    def test_matches_float_reference_within_quantization(self, rng):
        x = rng.normal(0, 0.5, size=(4, 6, 6))
        w = rng.normal(0, 0.2, size=(4, 4, 3, 3))
        hw_out = hw_conv2d(FxArray.from_float(x), FxArray.from_float(w)).to_float()
        ref = _float_conv_single_image(x, w)
        np.testing.assert_allclose(hw_out, ref, atol=1e-3)

    def test_stride_2(self, rng):
        x = rng.normal(size=(2, 8, 8)) * 0.3
        w = rng.normal(size=(3, 2, 3, 3)) * 0.2
        out = hw_conv2d(FxArray.from_float(x), FxArray.from_float(w), stride=2)
        assert out.shape == (3, 4, 4)

    def test_batch_accepted_and_matches_per_image(self, rng):
        x = FxArray.from_float(rng.normal(size=(3, 2, 4, 4)))
        w = FxArray.from_float(rng.normal(size=(2, 2, 3, 3)))
        batched = hw_conv2d(x, w)
        assert batched.shape == (3, 2, 4, 4)
        for i in range(3):
            assert np.array_equal(batched.raw[i], hw_conv2d(x[i], w).raw)

    def test_rejects_non_image_rank(self, rng):
        w = FxArray.from_float(rng.normal(size=(2, 2, 3, 3)))
        with pytest.raises(ValueError, match="batch"):
            hw_conv2d(FxArray.from_float(rng.normal(size=(4, 4))), w)

    def test_channel_mismatch(self, rng):
        x = FxArray.from_float(rng.normal(size=(3, 4, 4)))
        w = FxArray.from_float(rng.normal(size=(2, 2, 3, 3)))
        with pytest.raises(ValueError, match="channel mismatch"):
            hw_conv2d(x, w)

    def test_format_mismatch(self, rng):
        from repro.fixedpoint import Q16

        x = FxArray.from_float(rng.normal(size=(2, 4, 4)), Q20)
        w = FxArray.from_float(rng.normal(size=(2, 2, 3, 3)), Q16)
        with pytest.raises(ValueError, match="formats must match"):
            hw_conv2d(x, w)


class TestHwBatchNorm:
    def test_dynamic_stats_normalise_per_channel(self, rng):
        x = rng.normal(3.0, 2.0, size=(4, 16, 16))
        out = hw_batch_norm(
            FxArray.from_float(x),
            FxArray.from_float(np.ones(4)),
            FxArray.from_float(np.zeros(4)),
            dynamic_stats=True,
        ).to_float()
        assert abs(out.mean()) < 0.05
        assert out.std() == pytest.approx(1.0, abs=0.1)

    def test_running_stats_affine(self, rng):
        x = rng.normal(size=(2, 4, 4))
        out = hw_batch_norm(
            FxArray.from_float(x),
            FxArray.from_float(np.full(2, 2.0)),
            FxArray.from_float(np.full(2, 0.5)),
            running_mean=FxArray.from_float(np.zeros(2)),
            running_var=FxArray.from_float(np.ones(2)),
            dynamic_stats=False,
        ).to_float()
        np.testing.assert_allclose(out, 2.0 * x + 0.5, atol=1e-2)

    def test_missing_running_stats_rejected(self, rng):
        x = FxArray.from_float(rng.normal(size=(2, 4, 4)))
        with pytest.raises(ValueError, match="running statistics"):
            hw_batch_norm(
                x,
                FxArray.from_float(np.ones(2)),
                FxArray.from_float(np.zeros(2)),
                dynamic_stats=False,
            )

    def test_matches_software_eval_batchnorm(self, rng):
        """Fixed-point BN with running stats tracks the float eval-mode BN."""

        x = rng.normal(size=(3, 8, 8))
        gamma, beta = rng.normal(1, 0.1, 3), rng.normal(0, 0.1, 3)
        mean, var = rng.normal(0, 0.2, 3), rng.uniform(0.5, 1.5, 3)
        hw = hw_batch_norm(
            FxArray.from_float(x),
            FxArray.from_float(gamma),
            FxArray.from_float(beta),
            running_mean=FxArray.from_float(mean),
            running_var=FxArray.from_float(var),
            dynamic_stats=False,
        ).to_float()
        sw = F.batch_norm2d(
            Tensor(x[None]), Parameter(gamma), Parameter(beta), mean.copy(), var.copy(), training=False
        ).data[0]
        np.testing.assert_allclose(hw, sw, atol=5e-3)


class TestReluAndResidual:
    def test_relu(self, rng):
        x = rng.normal(size=(2, 4, 4))
        out = hw_relu(FxArray.from_float(x)).to_float()
        np.testing.assert_allclose(out, np.maximum(x, 0), atol=1e-6)

    def test_residual_add_step_one(self, rng):
        z = rng.normal(size=(2, 3, 3))
        f = rng.normal(size=(2, 3, 3))
        out = hw_residual_add(FxArray.from_float(z), FxArray.from_float(f), step_size=1.0)
        np.testing.assert_allclose(out.to_float(), z + f, atol=1e-5)

    def test_residual_add_fractional_step(self, rng):
        z = rng.normal(size=(2, 3, 3))
        f = rng.normal(size=(2, 3, 3))
        out = hw_residual_add(FxArray.from_float(z), FxArray.from_float(f), step_size=0.5)
        np.testing.assert_allclose(out.to_float(), z + 0.5 * f, atol=1e-4)

    def test_residual_format_mismatch(self, rng):
        from repro.fixedpoint import Q16

        with pytest.raises(ValueError):
            hw_residual_add(
                FxArray.from_float(rng.normal(size=(1, 2, 2)), Q20),
                FxArray.from_float(rng.normal(size=(1, 2, 2)), Q16),
            )

"""Bit-exactness of the batched HardwareODEBlock forward engine.

The batched path exists purely for throughput (accuracy-vs-format sweeps run
N images per quantise-once call); semantically the board processes images one
at a time.  Every test here therefore asserts **bitwise** equality between
one batched call and N single-image calls — including the regimes where
fixed-point arithmetic is most fragile: saturating inputs at extreme
Q-formats, truncating renormalisation of negative products, and the
per-image dynamic batch-normalisation statistics.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.fixedpoint import FxArray, Q8, Q16, Q20, QFormat
from repro.fpga import BlockWeights, HardwareODEBlock
from repro.fpga.geometry import LAYER1, BlockGeometry
from repro.fpga.ops import hw_batch_norm, hw_conv2d


def small_geometry(channels: int = 8, size: int = 4) -> BlockGeometry:
    return BlockGeometry(
        name="layer3_2", in_channels=channels, out_channels=channels, height=size, width=size
    )


def make_weights(geometry: BlockGeometry, seed: int = 1, time_concat: bool = False, scale: float = 0.2):
    rng = np.random.default_rng(seed)
    c = geometry.out_channels
    cin = geometry.in_channels + (1 if time_concat else 0)
    return BlockWeights(
        conv1_weight=rng.normal(0, scale, size=(c, cin, 3, 3)),
        bn1_gamma=np.ones(c),
        bn1_beta=np.zeros(c),
        conv2_weight=rng.normal(0, scale, size=(c, cin, 3, 3)),
        bn2_gamma=np.ones(c),
        bn2_beta=np.zeros(c),
    )


def make_batch(geometry: BlockGeometry, n: int = 5, scale: float = 0.5, seed: int = 7):
    rng = np.random.default_rng(seed)
    return rng.normal(0.0, scale, size=(n, geometry.in_channels, geometry.height, geometry.width))


EXTREME_FORMATS = [
    pytest.param(Q20, 0.4, id="Q20"),
    pytest.param(Q16, 0.4, id="Q16"),
    pytest.param(Q8, 2.0, id="Q8-saturating"),
    pytest.param(QFormat(6, 4), 3.0, id="Q6.4-hard-saturation"),
    pytest.param(QFormat(4, 2), 3.0, id="Q4.2-pathological"),
    pytest.param(QFormat(32, 30), 4.0, id="Q32.30-tiny-range"),
]


class TestBatchedOps:
    """The primitive operators, batched vs per-image."""

    @pytest.mark.parametrize("fmt,scale", EXTREME_FORMATS)
    def test_conv_batch_bitwise_equals_singles(self, fmt, scale):
        geometry = small_geometry()
        rng = np.random.default_rng(3)
        x = FxArray.from_float(make_batch(geometry, 4, scale), fmt)
        w = FxArray.from_float(rng.normal(0, 0.3, size=(8, 8, 3, 3)), fmt)
        batched = hw_conv2d(x, w)
        for i in range(4):
            assert np.array_equal(batched.raw[i], hw_conv2d(x[i], w).raw)

    @pytest.mark.parametrize("fmt,scale", EXTREME_FORMATS)
    def test_batch_norm_dynamic_stats_are_per_image(self, fmt, scale):
        geometry = small_geometry()
        x = FxArray.from_float(make_batch(geometry, 4, scale), fmt)
        gamma = FxArray.from_float(np.linspace(0.5, 1.5, 8), fmt)
        beta = FxArray.from_float(np.linspace(-0.2, 0.2, 8), fmt)
        batched = hw_batch_norm(x, gamma, beta)
        for i in range(4):
            assert np.array_equal(batched.raw[i], hw_batch_norm(x[i], gamma, beta).raw)

    def test_batch_norm_running_stats_broadcast(self):
        geometry = small_geometry()
        x = FxArray.from_float(make_batch(geometry, 3), Q16)
        gamma = FxArray.from_float(np.ones(8), Q16)
        beta = FxArray.from_float(np.zeros(8), Q16)
        mean = FxArray.from_float(np.linspace(-0.1, 0.1, 8), Q16)
        var = FxArray.from_float(np.linspace(0.5, 1.5, 8), Q16)
        batched = hw_batch_norm(x, gamma, beta, running_mean=mean, running_var=var, dynamic_stats=False)
        for i in range(3):
            single = hw_batch_norm(
                x[i], gamma, beta, running_mean=mean, running_var=var, dynamic_stats=False
            )
            assert np.array_equal(batched.raw[i], single.raw)


class TestBatchedForward:
    """The full five-step pipeline through HardwareODEBlock."""

    @pytest.mark.parametrize("fmt,scale", EXTREME_FORMATS)
    def test_dynamics_batch_bitwise_equals_singles(self, fmt, scale):
        geometry = small_geometry()
        block = HardwareODEBlock(geometry, make_weights(geometry), n_units=8, qformat=fmt)
        z = make_batch(geometry, 5, scale)
        batched = block.dynamics_batch(z, t=0.5)
        singles = np.stack([block.dynamics(z[i], t=0.5) for i in range(5)])
        assert np.array_equal(batched, singles)

    @pytest.mark.parametrize("fmt,scale", EXTREME_FORMATS)
    def test_execute_batch_residual_path(self, fmt, scale):
        geometry = small_geometry()
        block = HardwareODEBlock(geometry, make_weights(geometry), n_units=8, qformat=fmt)
        z = make_batch(geometry, 4, scale)
        out_batch, report = block.execute_batch(z, step_size=0.5, t=0.25)
        out_single = np.stack([block.execute(z[i], step_size=0.5, t=0.25)[0] for i in range(4)])
        assert np.array_equal(out_batch, out_single)
        # The report accounts for one image; the per-image cost is the same
        # object the single-image path reports.
        single_report = block.execute(z[0])[1]
        assert report.total_seconds == single_report.total_seconds

    def test_time_concat_mode_bitwise(self):
        geometry = small_geometry()
        block = HardwareODEBlock(
            geometry, make_weights(geometry, time_concat=True), n_units=8,
            qformat=Q16, time_concat=True,
        )
        z = make_batch(geometry, 4)
        batched = block.dynamics_batch(z, t=0.75)
        singles = np.stack([block.dynamics(z[i], t=0.75) for i in range(4)])
        assert np.array_equal(batched, singles)

    def test_run_iterations_batch_matches_per_image(self):
        geometry = small_geometry()
        block = HardwareODEBlock(geometry, make_weights(geometry), n_units=8, qformat=Q16)
        z = make_batch(geometry, 3)
        final_batch, total_batch, reports = block.run_iterations_batch(z, iterations=3)
        totals = []
        for i in range(3):
            final_i, total_i, _ = block.run_iterations(z[i], iterations=3)
            assert np.array_equal(final_batch[i], final_i)
            totals.append(total_i)
        assert total_batch == pytest.approx(sum(totals))
        assert len(reports) == 3

    def test_invocation_counter_advances_by_batch_size(self):
        geometry = small_geometry()
        block = HardwareODEBlock(geometry, make_weights(geometry), n_units=8)
        z = make_batch(geometry, 6)
        assert block.invocations == 0
        block.execute_batch(z)
        assert block.invocations == 6
        block.run_iterations_batch(z, iterations=2)
        assert block.invocations == 6 + 12

    def test_batch_of_one_equals_single(self):
        geometry = small_geometry()
        block = HardwareODEBlock(geometry, make_weights(geometry), n_units=8, qformat=Q8)
        z = make_batch(geometry, 1, scale=1.5)
        assert np.array_equal(block.dynamics_batch(z)[0], block.dynamics(z[0]))

    def test_dynamics_batch_rejects_single_image(self):
        geometry = small_geometry()
        block = HardwareODEBlock(geometry, make_weights(geometry))
        with pytest.raises(ValueError, match="batch"):
            block.dynamics_batch(np.zeros((8, 4, 4)))
        with pytest.raises(ValueError, match="batch"):
            block.execute_batch(np.zeros((8, 4, 4)))

    def test_full_layer1_geometry_spot_check(self):
        """One real paper geometry (16ch 32x32), small batch, Q20."""

        block = HardwareODEBlock(LAYER1, make_weights(LAYER1, scale=0.1), n_units=16)
        z = make_batch(LAYER1, 2, scale=0.3)
        batched = block.dynamics_batch(z)
        singles = np.stack([block.dynamics(z[i]) for i in range(2)])
        assert np.array_equal(batched, singles)


class TestSaturationEdgeCases:
    """Inputs engineered to sit exactly on the saturation/rounding edges."""

    def test_all_inputs_at_format_limits(self):
        geometry = small_geometry()
        fmt = QFormat(8, 5)
        block = HardwareODEBlock(geometry, make_weights(geometry), n_units=8, qformat=fmt)
        z = np.empty((4, 8, 4, 4))
        z[0] = fmt.max_value
        z[1] = fmt.min_value
        z[2] = 10.0 * fmt.max_value  # far out of range: quantises to the rails
        z[3] = fmt.resolution / 3.0  # rounds to zero or one LSB
        batched = block.dynamics_batch(z)
        singles = np.stack([block.dynamics(z[i]) for i in range(4)])
        assert np.array_equal(batched, singles)

    def test_mixed_saturating_and_tame_images_do_not_interact(self):
        """A saturating image must not perturb its tame neighbours."""

        geometry = small_geometry()
        fmt = QFormat(8, 4)
        block = HardwareODEBlock(geometry, make_weights(geometry), n_units=8, qformat=fmt)
        tame = make_batch(geometry, 2, scale=0.3)
        hot = np.full((1, 8, 4, 4), 100.0)
        mixed = np.concatenate([tame[:1], hot, tame[1:]])
        batched = block.dynamics_batch(mixed)
        assert np.array_equal(batched[0], block.dynamics(tame[0]))
        assert np.array_equal(batched[2], block.dynamics(tame[1]))

    def test_wrap_overflow_mode_round_trips_through_conv(self):
        fmt = QFormat(8, 4)
        rng = np.random.default_rng(11)
        x = FxArray.from_float(rng.normal(0, 2.0, size=(3, 4, 6, 6)), fmt, overflow="wrap")
        w = FxArray.from_float(rng.normal(0, 0.5, size=(4, 4, 3, 3)), fmt, overflow="wrap")
        batched = hw_conv2d(x, w)
        for i in range(3):
            assert np.array_equal(batched.raw[i], hw_conv2d(x[i], w).raw)

"""Tests for the timing-closure model."""

from __future__ import annotations

import pytest

from repro.fpga import DEFAULT_TIMING_MODEL, TimingModel, TimingModelConfig


class TestPaperTimingObservation:
    """Section 3.1: conv_x32 fails 100 MHz; conv_x16 and below pass."""

    @pytest.mark.parametrize("n_units", [1, 4, 8, 16])
    def test_up_to_x16_meets_timing(self, n_units):
        assert DEFAULT_TIMING_MODEL.analyze(n_units).meets_timing

    def test_x32_fails_timing(self):
        assert not DEFAULT_TIMING_MODEL.analyze(32).meets_timing

    def test_max_units_meeting_timing_is_16(self):
        assert DEFAULT_TIMING_MODEL.max_units_meeting_timing() == 16


class TestTimingModelBehaviour:
    def test_critical_path_monotone_in_units(self):
        model = TimingModel()
        paths = [model.critical_path_ns(n) for n in (1, 2, 4, 8, 16, 32)]
        assert all(a < b for a, b in zip(paths, paths[1:]))

    def test_fmax_inverse_of_path(self):
        model = TimingModel()
        assert model.fmax_hz(8) == pytest.approx(1e9 / model.critical_path_ns(8))

    def test_slack_sign_matches_meets_timing(self):
        model = TimingModel()
        for n in (1, 16, 32):
            report = model.analyze(n)
            assert (report.slack_ns >= 0) == report.meets_timing

    def test_invalid_units(self):
        with pytest.raises(ValueError):
            TimingModel().critical_path_ns(0)

    def test_lower_target_clock_always_passes(self):
        model = TimingModel()
        assert model.analyze(32, target_hz=50e6).meets_timing

    def test_sweep_and_report_dict(self):
        sweep = TimingModel().sweep((1, 16, 32))
        assert set(sweep) == {1, 16, 32}
        d = sweep[16].as_dict()
        assert {"n_units", "fmax_mhz", "meets_timing", "slack_ns"} <= set(d)

    def test_no_feasible_configuration_raises(self):
        config = TimingModelConfig(base_delay_ns=50.0)
        with pytest.raises(RuntimeError):
            TimingModel(config).max_units_meeting_timing(candidates=(8, 16))


class TestTimingReportStr:
    """__str__ is the CLI `timing` table row; pin its load-bearing content."""

    def test_passing_report_mentions_met_and_positive_slack(self):
        line = str(TimingModel().analyze(16))
        assert "conv_x16" in line
        assert "met" in line
        assert "+0.20 ns" in line
        assert "102.0 MHz" in line

    def test_failing_report_mentions_failed_and_negative_slack(self):
        line = str(TimingModel().analyze(32))
        assert "conv_x32" in line
        assert "FAILED" in line
        assert "-1.00 ns" in line

    def test_str_reflects_custom_target_clock(self):
        line = str(TimingModel().analyze(32, target_hz=50e6))
        assert "50.0 MHz" in line
        assert "met" in line

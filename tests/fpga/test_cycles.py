"""Tests for the PL cycle model — calibrated against the paper's numbers."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fpga import (
    LAYER1,
    LAYER2_2,
    LAYER3_2,
    PAPER_LAYER3_2_CYCLES,
    CycleModelConfig,
    OdeBlockCycleModel,
)


class TestPaperCalibration:
    """Section 3.1 publishes layer3_2 cycle counts for conv_x1..x32."""

    @pytest.mark.parametrize("n_units,published", sorted(PAPER_LAYER3_2_CYCLES.items()))
    def test_layer3_2_cycles_match_paper(self, n_units, published):
        model = OdeBlockCycleModel()
        predicted = model.block_cycles(LAYER3_2, n_units).total
        assert predicted == pytest.approx(published, rel=0.02)

    def test_cycles_inverse_proportional_to_units(self):
        """"Their execution cycles (except for the batch normalization)
        decrease in inverse proportion to the number of multiply-add units."""

        model = OdeBlockCycleModel()
        conv1 = model.conv_cycles(LAYER3_2, 1)
        conv16 = model.conv_cycles(LAYER3_2, 16)
        assert conv1 / conv16 == pytest.approx(16.0)

    def test_bn_cycles_independent_of_units(self):
        model = OdeBlockCycleModel()
        assert model.bn_cycles(LAYER3_2) == model.bn_cycles(LAYER3_2)
        b = model.block_cycles(LAYER3_2, 1).bn_cycles
        b16 = model.block_cycles(LAYER3_2, 16).bn_cycles
        assert b == b16

    def test_conv_x16_layer3_2_time_at_100mhz(self):
        """~16.5 ms per execution, consistent with Table 5 (0.40 s / 24)."""

        model = OdeBlockCycleModel()
        seconds = model.block_time_seconds(LAYER3_2, 16, clock_hz=100e6)
        assert seconds == pytest.approx(0.0165, rel=0.03)

    def test_conv_x16_layer1_time_at_100mhz(self):
        """~22 ms per execution, consistent with Table 5 (0.55 s / 25)."""

        model = OdeBlockCycleModel()
        seconds = model.block_time_seconds(LAYER1, 16, clock_hz=100e6)
        assert seconds == pytest.approx(0.022, rel=0.05)

    def test_conv_x16_layer2_2_time_at_100mhz(self):
        """~18 ms per execution, consistent with Table 5 (0.44 s / 24)."""

        model = OdeBlockCycleModel()
        seconds = model.block_time_seconds(LAYER2_2, 16, clock_hz=100e6)
        assert seconds == pytest.approx(0.0183, rel=0.05)


class TestModelStructure:
    def test_effective_units_capped_by_channels(self):
        """Parallelism "is also restricted by the number of output channels"."""

        model = OdeBlockCycleModel()
        assert model.effective_units(LAYER1, 32) == 16
        assert model.effective_units(LAYER1, 64) == 16
        assert model.effective_units(LAYER3_2, 32) == 32

    def test_invalid_units_rejected(self):
        with pytest.raises(ValueError):
            OdeBlockCycleModel().effective_units(LAYER1, 0)

    def test_breakdown_total_is_sum(self):
        breakdown = OdeBlockCycleModel().block_cycles(LAYER2_2, 8)
        assert breakdown.total == pytest.approx(
            breakdown.conv_cycles + breakdown.bn_cycles + breakdown.relu_cycles + breakdown.overhead_cycles
        )

    def test_as_dict(self):
        d = OdeBlockCycleModel().block_cycles(LAYER1, 4).as_dict()
        assert set(d) == {"conv_cycles", "bn_cycles", "relu_cycles", "overhead_cycles", "total_cycles"}

    def test_parallelism_sweep_keys(self):
        sweep = OdeBlockCycleModel().parallelism_sweep(LAYER3_2)
        assert set(sweep) == {1, 4, 8, 16, 32}

    def test_custom_config_overhead(self):
        config = CycleModelConfig(invocation_overhead=1000.0, relu_cycles_per_element=1.0)
        model = OdeBlockCycleModel(config)
        breakdown = model.block_cycles(LAYER3_2, 16)
        assert breakdown.overhead_cycles == 1000.0
        assert breakdown.relu_cycles > 0

    def test_bn_share_grows_with_parallelism(self):
        """With more MAC units, BN becomes the larger share (Amdahl)."""

        model = OdeBlockCycleModel()
        share_1 = model.block_cycles(LAYER3_2, 1).bn_cycles / model.block_cycles(LAYER3_2, 1).total
        share_32 = model.block_cycles(LAYER3_2, 32).bn_cycles / model.block_cycles(LAYER3_2, 32).total
        assert share_32 > share_1

    @given(st.sampled_from([1, 2, 4, 8, 16]), st.sampled_from(["layer1", "layer2_2", "layer3_2"]))
    @settings(max_examples=30, deadline=None)
    def test_more_units_never_slower(self, n, layer_name):
        from repro.fpga import block_geometry

        geom = block_geometry(layer_name)
        model = OdeBlockCycleModel()
        assert model.block_cycles(geom, n * 2).total <= model.block_cycles(geom, n).total

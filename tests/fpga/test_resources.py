"""Tests for the resource-utilisation model (Table 3)."""

from __future__ import annotations

import pytest

from repro.fpga import (
    PUBLISHED_TABLE3,
    ZYNQ_XC7Z020,
    ResourceEstimator,
    published_table3,
)


class TestPublishedTable3:
    def test_all_twelve_configurations_present(self):
        assert len(PUBLISHED_TABLE3) == 12
        layers = {key[0] for key in PUBLISHED_TABLE3}
        assert layers == {"layer1", "layer2_2", "layer3_2"}

    def test_layer3_2_bram_is_100_percent(self):
        table = published_table3()
        for n in (1, 4, 8, 16):
            assert table[("layer3_2", n)]["bram_pct"] == pytest.approx(100.0)

    def test_layer1_layer2_2_bram_is_40_percent(self):
        table = published_table3()
        for layer in ("layer1", "layer2_2"):
            for n in (1, 4, 8):
                assert table[(layer, n)]["bram_pct"] == pytest.approx(40.0)

    def test_dsp_percentages(self):
        table = published_table3()
        assert table[("layer1", 16)]["dsp_pct"] == pytest.approx(30.91, abs=0.01)
        assert table[("layer2_2", 1)]["dsp_pct"] == pytest.approx(3.63, abs=0.01)

    def test_lut_percentages_match_paper(self):
        table = published_table3()
        assert table[("layer3_2", 16)]["lut_pct"] == pytest.approx(23.91, abs=0.02)
        assert table[("layer1", 16)]["lut_pct"] == pytest.approx(16.91, abs=0.02)


class TestDspModel:
    """The paper's DSP counts follow 4 + 4*n exactly."""

    @pytest.mark.parametrize("n_units,expected", [(1, 8), (4, 20), (8, 36), (16, 68)])
    def test_dsp_exact(self, n_units, expected):
        estimator = ResourceEstimator()
        assert estimator.dsp_count(n_units) == expected
        for layer in ("layer1", "layer2_2", "layer3_2"):
            assert PUBLISHED_TABLE3[(layer, n_units)].dsp == expected


class TestAnalyticalEstimates:
    def test_lut_ff_within_tolerance_of_published(self):
        estimator = ResourceEstimator()
        for (layer, n_units), published in PUBLISHED_TABLE3.items():
            est = estimator.estimate(layer, n_units=n_units).resources
            assert est.lut == pytest.approx(published.lut, rel=0.45), (layer, n_units)
            assert est.ff == pytest.approx(published.ff, rel=0.6), (layer, n_units)

    def test_layer3_2_has_largest_bram_estimate(self):
        estimator = ResourceEstimator()
        brams = {
            layer: estimator.estimate(layer, 16).resources.bram
            for layer in ("layer1", "layer2_2", "layer3_2")
        }
        assert brams["layer3_2"] == max(brams.values())

    def test_single_blocks_fit_device(self):
        """Section 3.2: each of the three layers fits individually."""

        estimator = ResourceEstimator()
        feasible = estimator.feasible_blocks(n_units=16)
        assert feasible == {"layer1": True, "layer2_2": True, "layer3_2": True}

    def test_layer1_plus_layer2_2_combination_fits(self):
        """Section 3.2 case 3: layer1 and layer2_2 both on the PL."""

        estimator = ResourceEstimator()
        combo = estimator.estimate_combination(["layer1", "layer2_2"], n_units=16)
        assert combo.fits(ZYNQ_XC7Z020)

    def test_all_three_layers_do_not_fit_together(self):
        """The paper never places all three blocks at once — BRAM runs out."""

        estimator = ResourceEstimator()
        combo = estimator.estimate_combination(["layer1", "layer2_2", "layer3_2"], n_units=16)
        assert not combo.fits(ZYNQ_XC7Z020)

    def test_estimate_reports_bram_plan(self):
        est = ResourceEstimator().estimate("layer3_2", 16)
        assert est.bram_plan.total_tiles == est.resources.bram
        assert est.block == "layer3_2"

    def test_estimates_monotone_in_units(self):
        estimator = ResourceEstimator()
        for layer in ("layer1", "layer2_2", "layer3_2"):
            previous = None
            for n in (1, 4, 8, 16):
                est = estimator.estimate(layer, n_units=n).resources
                if previous is not None:
                    assert est.dsp > previous.dsp
                    assert est.lut > previous.lut
                previous = est

    def test_utilization_accessor(self):
        est = ResourceEstimator().estimate("layer1", 16)
        util = est.utilization()
        assert 0 < util["dsp"] < 100
        assert est.fits(ZYNQ_XC7Z020)

"""Property tests of the exact split-limb GEMM (`repro.fpga.gemm`).

The kernel's whole contract is one sentence — ``gemm_exact(a, b)`` is
bit-for-bit equal to NumPy's ``int64`` matmul for *every* input, it only
arrives faster — so these tests are a single property instantiated many
ways: random Q-format word lengths from 4 to 64 bits, random geometry
grids, adversarial all-rails operands (every entry at the format's
saturation rail), deliberately wrapping int64 inputs, and the fallback
trigger boundary where no limb decomposition fits the float64 mantissa.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fpga.gemm import (
    FLOAT_MANTISSA_BITS,
    MAX_LIMBS,
    GemmPlan,
    PlannedGemm,
    gemm_exact,
    plan_gemm,
)
from repro.fpga.gemm import _magnitude, _split_limbs


def rand_ints(rng: np.random.Generator, bits: int, shape) -> np.ndarray:
    """Uniform int64 values of at most ``bits`` magnitude bits (signed)."""

    hi = 1 << (bits - 1) if bits < 64 else (1 << 63) - 1
    return rng.integers(-hi, hi, size=shape, dtype=np.int64, endpoint=True)


class TestPlanGemm:
    def test_small_operands_take_single_limb_blas(self):
        plan = plan_gemm(a_max=2**20, b_max=2**15, k=577)
        assert plan.uses_blas and plan.n_limbs == 1

    def test_q20_conv_shape_splits_b_in_two(self):
        # Q20 activations (~31 bits) x Q20 weights at scale 0.1 (~17 bits),
        # K = 577: headroom 53 - 32 - 10 = 11 -> two 11-bit limbs of b.
        plan = plan_gemm(a_max=2**31 - 1, b_max=2**17 - 1, k=577)
        assert plan.split == "b"
        assert plan.n_limbs == 2

    def test_fallback_when_both_operands_are_wide(self):
        plan = plan_gemm(a_max=2**62, b_max=2**62, k=577)
        assert plan.split == "int64"
        assert not plan.uses_blas

    def test_fallback_boundary_is_exactly_the_limb_budget(self):
        # Symmetric widths, k_bits = 6: w bits split into limbs of
        # (53 - w - 6) bits is feasible iff ceil(w / (47 - w)) <= MAX_LIMBS,
        # i.e. w <= 37.  One more bit on both sides and neither candidate
        # fits the limb budget -> the plan must fall back.
        k = 64  # k_bits = 6
        feasible = plan_gemm(2**37 - 1, 2**37 - 1, k)
        infeasible = plan_gemm(2**38 - 1, 2**38 - 1, k)
        assert feasible.uses_blas and feasible.n_limbs == MAX_LIMBS
        assert feasible.split == "b"  # the tie-break side
        assert infeasible.split == "int64"

    def test_splits_the_wide_left_operand_when_cheaper(self):
        # a wide (46 bits), b narrow (8 bits), k_bits = 4: splitting b only
        # gets 3-bit limbs (3 of them); splitting a gets 41-bit limbs (2).
        plan = plan_gemm(a_max=2**45, b_max=2**7, k=16)
        assert plan.split == "a"
        assert plan.n_limbs == 2

    @given(
        a_bits=st.integers(1, 63),
        b_bits=st.integers(1, 63),
        k=st.integers(1, 10_000),
    )
    @settings(max_examples=200, deadline=None)
    def test_every_plan_respects_the_mantissa_bound(self, a_bits, b_bits, k):
        plan = plan_gemm(2**a_bits - 1, 2**b_bits - 1, k)
        if plan.split == "int64":
            return
        fixed_bits = plan.a_bits if plan.split == "b" else plan.b_bits
        assert fixed_bits + plan.limb_bits + plan.k_bits <= FLOAT_MANTISSA_BITS
        assert 1 <= plan.n_limbs <= MAX_LIMBS


class TestSplitLimbs:
    @given(bits=st.integers(1, 63), limb_bits=st.integers(1, 52))
    @settings(max_examples=100, deadline=None)
    def test_limbs_reconstruct_the_operand(self, bits, limb_bits):
        rng = np.random.default_rng((bits, limb_bits))
        x = rand_ints(rng, bits, (7, 5))
        n_limbs = max(1, -(-bits // limb_bits))
        limbs = _split_limbs(x, limb_bits, n_limbs)
        back = np.zeros_like(x)
        for j, limb in enumerate(limbs):
            back += limb.astype(np.int64) << np.int64(j * limb_bits)
        np.testing.assert_array_equal(back, x)

    def test_magnitude_handles_int64_min(self):
        assert _magnitude(np.array([np.iinfo(np.int64).min], dtype=np.int64)) == 2**63
        assert _magnitude(np.array([], dtype=np.int64)) == 0


class TestGemmExactBitIdentity:
    @given(
        a_word=st.integers(4, 64),
        b_word=st.integers(4, 64),
        m=st.integers(1, 24),
        k=st.integers(1, 96),
        n=st.integers(1, 24),
        seed=st.integers(0, 2**31),
    )
    @settings(max_examples=150, deadline=None)
    def test_random_wordlength_and_geometry_grid(self, a_word, b_word, m, k, n, seed):
        """The headline property: exact for any widths, any shapes."""

        rng = np.random.default_rng(seed)
        a = rand_ints(rng, min(a_word, 63), (m, k))
        b = rand_ints(rng, min(b_word, 63), (k, n))
        np.testing.assert_array_equal(gemm_exact(a, b), a @ b)

    @pytest.mark.parametrize("word_length", [4, 8, 16, 20, 32, 48, 64])
    def test_all_rails_adversarial_inputs(self, word_length):
        """Every entry at the signed rails of the word length (incl. wrap)."""

        lo = -(1 << (word_length - 1))
        hi = (1 << (word_length - 1)) - 1
        if word_length == 64:
            lo, hi = np.iinfo(np.int64).min, np.iinfo(np.int64).max
        rng = np.random.default_rng(word_length)
        a = rng.choice(np.array([lo, hi], dtype=np.int64), size=(16, 129))
        b = rng.choice(np.array([lo, hi], dtype=np.int64), size=(129, 8))
        # At wide word lengths the int64 accumulator wraps; NumPy's matmul
        # wraps modulo 2**64 and so must the recombination.
        np.testing.assert_array_equal(gemm_exact(a, b), a @ b)

    def test_zero_and_empty_operands(self):
        a = np.zeros((3, 4), dtype=np.int64)
        b = np.zeros((4, 2), dtype=np.int64)
        np.testing.assert_array_equal(gemm_exact(a, b), a @ b)
        a = np.empty((0, 4), dtype=np.int64)
        np.testing.assert_array_equal(gemm_exact(a, b), a @ b)

    @given(limbs=st.integers(1, MAX_LIMBS), seed=st.integers(0, 2**31))
    @settings(max_examples=60, deadline=None)
    def test_every_limb_count_is_exercised_and_exact(self, limbs, seed):
        """Drive the planner to each limb count and check bit-identity."""

        k = 32  # k_bits = 5
        a_bits = 30
        headroom = FLOAT_MANTISSA_BITS - a_bits - 5
        b_bits = min(headroom * limbs, 63)
        rng = np.random.default_rng(seed)
        a = rand_ints(rng, a_bits, (9, k))
        b = rand_ints(rng, b_bits, (k, 7))
        planned = PlannedGemm(b, a_max=_magnitude(a))
        if _magnitude(b).bit_length() > headroom * (limbs - 1):
            assert planned.plan.n_limbs == limbs
        np.testing.assert_array_equal(gemm_exact(a, b), a @ b)

    def test_fallback_path_is_the_plain_matmul(self):
        rng = np.random.default_rng(0)
        a = rand_ints(rng, 63, (5, 17))
        b = rand_ints(rng, 63, (17, 3))
        planned = PlannedGemm(b, a_max=_magnitude(a))
        assert planned.plan.split == "int64"
        np.testing.assert_array_equal(planned(a), a @ b)

    def test_planned_gemm_accepts_prematerialised_float64(self):
        """The hw_conv2d hot path feeds float64 im2col chunks directly."""

        rng = np.random.default_rng(1)
        a = rand_ints(rng, 30, (11, 145))
        b = rand_ints(rng, 17, (145, 16))
        planned = PlannedGemm(b, a_max=_magnitude(a))
        assert planned.plan.split == "b"
        assert planned.a_dtype == np.float64
        np.testing.assert_array_equal(planned(a.astype(np.float64)), a @ b)

    def test_shape_and_dtype_validation(self):
        a = np.zeros((2, 3), dtype=np.int64)
        with pytest.raises(ValueError, match="shape mismatch"):
            gemm_exact(a, np.zeros((4, 2), dtype=np.int64))
        with pytest.raises(ValueError, match="2-D"):
            gemm_exact(np.zeros(3, dtype=np.int64), np.zeros((3, 2), dtype=np.int64))
        with pytest.raises(ValueError, match="int64"):
            PlannedGemm(np.zeros((3, 2), dtype=np.float64), a_max=1)
        with pytest.raises(ValueError, match="incompatible"):
            PlannedGemm(np.zeros((4, 2), dtype=np.int64), a_max=1)(a)

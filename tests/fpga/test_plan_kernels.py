"""Property-based tests of the closed-form plan/timing kernels (hypothesis).

The batch-evaluation engine replaced the per-unique-key scalar BRAM/timing
calls with array kernels; these tests pin the kernels to the scalar truth
and to the structural invariants the design space relies on:

* BRAM — tile counts are monotone in the byte count, never under-allocate
  capacity, match :func:`plan_block_allocation` exactly, and a ``fits``
  verdict implies the total is within the device capacity;
* timing — the achievable frequency is monotone non-increasing in the
  MAC-unit count, kernels match :meth:`TimingModel.analyze` bit-for-bit,
  and the slack sign always agrees with the closure verdict;
* scheduler — the closed-form cycle count equals stepping the schedule.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fixedpoint import QFormat
from repro.fpga import (
    LAYER1,
    LAYER2_2,
    LAYER3_2,
    ZYNQ_XC7Z020,
    BRAM36_BYTES,
    DatapathScheduler,
    TimingModel,
    bram_fits_kernel,
    bram_tiles_kernel,
    critical_path_ns_kernel,
    fmax_hz_kernel,
    meets_timing_kernel,
    plan_block_allocation,
    schedule_cycles_kernel,
    slack_ns_kernel,
    tiles_for_bytes,
    tiles_for_bytes_kernel,
)
from repro.fpga.geometry import BlockGeometry

GEOMETRIES = (LAYER1, LAYER2_2, LAYER3_2)


@st.composite
def geometries(draw) -> BlockGeometry:
    """A small but structurally valid block geometry."""

    channels = draw(st.sampled_from([1, 2, 3, 8, 16, 32, 64]))
    size = draw(st.sampled_from([2, 4, 8, 16, 32]))
    return BlockGeometry(
        name="prop", in_channels=channels, out_channels=channels, height=size, width=size
    )


@st.composite
def qformat_pairs(draw):
    word_length = draw(st.integers(min_value=2, max_value=64))
    fraction_bits = draw(st.integers(min_value=0, max_value=word_length - 1))
    return QFormat(word_length, fraction_bits)


class TestBramKernels:
    @given(st.integers(min_value=0, max_value=10**9), st.integers(min_value=0, max_value=10**9))
    @settings(max_examples=60, deadline=None)
    def test_tiles_monotone_in_bytes(self, a, b):
        lo, hi = sorted((a, b))
        assert tiles_for_bytes_kernel(lo) <= tiles_for_bytes_kernel(hi)

    @given(st.integers(min_value=0, max_value=10**9))
    @settings(max_examples=60, deadline=None)
    def test_tiles_never_under_allocate(self, num_bytes):
        tiles = int(tiles_for_bytes_kernel(num_bytes))
        assert tiles * BRAM36_BYTES >= num_bytes
        # ... and never over-allocate by a full spare tile.
        assert num_bytes == 0 or (tiles - 1) * BRAM36_BYTES < num_bytes

    @given(st.integers(min_value=0, max_value=10**9))
    @settings(max_examples=60, deadline=None)
    def test_kernel_matches_scalar_helper(self, num_bytes):
        assert int(tiles_for_bytes_kernel(num_bytes)) == tiles_for_bytes(num_bytes)

    @given(geometries(), qformat_pairs())
    @settings(max_examples=60, deadline=None)
    def test_total_tiles_match_scalar_plan(self, geometry, fmt):
        plan = plan_block_allocation(geometry, n_units=16, qformat=fmt)
        assert int(bram_tiles_kernel(geometry, fmt.bytes_per_value)) == plan.total_tiles

    @given(qformat_pairs(), st.sampled_from(GEOMETRIES))
    @settings(max_examples=60, deadline=None)
    def test_fits_implies_within_capacity(self, fmt, geometry):
        tiles = bram_tiles_kernel(geometry, fmt.bytes_per_value)
        if bool(bram_fits_kernel(tiles, ZYNQ_XC7Z020)):
            assert int(tiles) <= ZYNQ_XC7Z020.bram36

    def test_vectorized_over_format_axis(self):
        bpv = np.array([1, 2, 2, 4, 8])
        tiles = bram_tiles_kernel(LAYER3_2, bpv)
        expected = [
            plan_block_allocation(LAYER3_2, qformat=QFormat(8 * b, 4 * b - 1)).total_tiles
            for b in bpv
        ]
        # bytes_per_value is what matters; any format with that storage width
        # gives the same plan.
        assert tiles.tolist() == expected

    def test_tiles_monotone_in_bytes_per_value(self):
        bpv = np.arange(1, 9)
        tiles = bram_tiles_kernel(LAYER2_2, bpv)
        assert all(a <= b for a, b in zip(tiles, tiles[1:]))


class TestResourceEstimateBatch:
    @given(
        st.sampled_from(GEOMETRIES),
        st.lists(st.integers(min_value=1, max_value=64), min_size=1, max_size=8),
        st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=40, deadline=None)
    def test_estimate_batch_matches_scalar_estimates(self, geometry, units, bpv):
        from repro.fpga import ResourceEstimator

        estimator = ResourceEstimator(qformat=QFormat(8 * bpv, 8 * bpv - 1))
        batch = estimator.estimate_batch(geometry, np.asarray(units))
        for i, n in enumerate(units):
            scalar = estimator.estimate(geometry, n_units=n)
            assert int(batch["bram"][i]) == scalar.resources.bram
            assert int(batch["dsp"][i]) == scalar.resources.dsp
            assert float(batch["lut"][i]) == scalar.resources.lut
            assert float(batch["ff"][i]) == scalar.resources.ff
            assert bool(batch["fits_device"][i]) == scalar.fits(ZYNQ_XC7Z020)

    def test_estimate_batch_broadcasts_format_axis(self):
        from repro.fpga import ResourceEstimator

        estimator = ResourceEstimator()
        batch = estimator.estimate_batch(LAYER3_2, 16, bytes_per_value=np.array([1, 2, 4, 8]))
        expected = [
            plan_block_allocation(LAYER3_2, n_units=16, qformat=QFormat(8 * b, 3)).total_tiles
            for b in (1, 2, 4, 8)
        ]
        assert batch["bram"].tolist() == expected


class TestTimingKernels:
    @given(st.lists(st.integers(min_value=1, max_value=4096), min_size=2, max_size=32))
    @settings(max_examples=60, deadline=None)
    def test_fmax_monotone_non_increasing_in_units(self, units):
        units = np.sort(np.asarray(units, dtype=np.int64))
        cfg = TimingModel().config
        fmax = fmax_hz_kernel(
            critical_path_ns_kernel(units, cfg.base_delay_ns, cfg.per_level_delay_ns)
        )
        assert np.all(np.diff(fmax) <= 0)

    @given(
        st.integers(min_value=1, max_value=4096),
        st.floats(min_value=1e6, max_value=1e9, allow_nan=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_kernels_match_scalar_analyze(self, n_units, target_hz):
        model = TimingModel()
        report = model.analyze(n_units, target_hz=target_hz)
        cfg = model.config
        path = critical_path_ns_kernel(n_units, cfg.base_delay_ns, cfg.per_level_delay_ns)
        assert float(path) == report.critical_path_ns
        assert float(fmax_hz_kernel(path)) == report.fmax_hz
        assert float(slack_ns_kernel(path, target_hz)) == report.slack_ns
        assert bool(meets_timing_kernel(path, target_hz)) == report.meets_timing

    @given(
        st.integers(min_value=1, max_value=4096),
        st.floats(min_value=1e6, max_value=1e9, allow_nan=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_slack_sign_agrees_with_closure(self, n_units, target_hz):
        cfg = TimingModel().config
        path = critical_path_ns_kernel(n_units, cfg.base_delay_ns, cfg.per_level_delay_ns)
        assert (float(slack_ns_kernel(path, target_hz)) >= 0) == bool(
            meets_timing_kernel(path, target_hz)
        )

    def test_analyze_batch_matches_scalar_loop(self):
        model = TimingModel()
        units = np.array([1, 2, 3, 5, 8, 13, 16, 31, 32, 64, 100])
        clocks = np.linspace(50e6, 150e6, len(units))
        batch = model.analyze_batch(units, clocks)
        for i, (n, hz) in enumerate(zip(units, clocks)):
            report = model.analyze(int(n), target_hz=float(hz))
            assert batch["critical_path_ns"][i] == report.critical_path_ns
            assert batch["fmax_hz"][i] == report.fmax_hz
            assert batch["slack_ns"][i] == report.slack_ns
            assert bool(batch["meets_timing"][i]) == report.meets_timing

    def test_analyze_batch_rejects_non_positive_units(self):
        with pytest.raises(ValueError):
            TimingModel().analyze_batch([4, 0, 16])


class TestSchedulerKernel:
    @given(st.sampled_from(GEOMETRIES), st.integers(min_value=1, max_value=128))
    @settings(max_examples=40, deadline=None)
    def test_closed_form_equals_stepped_schedule(self, geometry, n_units):
        scheduler = DatapathScheduler()
        stepped = scheduler.simulate_block(geometry, n_units).total_cycles
        assert float(scheduler.total_cycles_batch(geometry, n_units)) == stepped

    @given(geometries(), st.integers(min_value=1, max_value=128))
    @settings(max_examples=40, deadline=None)
    def test_closed_form_with_unfused_relu(self, geometry, n_units):
        scheduler = DatapathScheduler(relu_fused=False)
        stepped = scheduler.simulate_block(geometry, n_units).total_cycles
        assert float(scheduler.total_cycles_batch(geometry, n_units)) == stepped

    def test_vectorized_unit_axis(self):
        scheduler = DatapathScheduler()
        units = np.arange(1, 70)
        vec = scheduler.total_cycles_batch(LAYER2_2, units)
        assert vec.shape == units.shape
        assert all(
            vec[i] == scheduler.simulate_block(LAYER2_2, int(n)).total_cycles
            for i, n in enumerate(units)
        )

    def test_kernel_function_defaults_match_scheduler_defaults(self):
        assert float(schedule_cycles_kernel(LAYER1, 16)) == (
            DatapathScheduler().simulate_block(LAYER1, 16).total_cycles
        )

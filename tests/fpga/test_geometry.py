"""Tests for the offloadable block geometries."""

from __future__ import annotations

import pytest

from repro.fpga import LAYER1, LAYER2_2, LAYER3_2, OFFLOADABLE_BLOCKS, block_geometry


class TestBlockGeometries:
    def test_paper_shapes(self):
        """Section 3.1: channels 16/32/64, feature maps 32x32 / 16x16 / 8x8."""

        assert (LAYER1.in_channels, LAYER1.height) == (16, 32)
        assert (LAYER2_2.in_channels, LAYER2_2.height) == (32, 16)
        assert (LAYER3_2.in_channels, LAYER3_2.height) == (64, 8)
        for geom in (LAYER1, LAYER2_2, LAYER3_2):
            assert geom.kernel == 3 and geom.stride == 1
            assert geom.num_convs == 2 and geom.num_batch_norms == 2

    def test_all_blocks_have_equal_macs(self):
        """Channel doubling exactly offsets the spatial halving."""

        assert LAYER1.total_macs == LAYER2_2.total_macs == LAYER3_2.total_macs
        assert LAYER3_2.total_macs == 2 * 64 * 64 * 9 * 8 * 8

    def test_output_elements(self):
        assert LAYER1.output_elements == 16 * 32 * 32
        assert LAYER2_2.output_elements == 32 * 16 * 16
        assert LAYER3_2.output_elements == 64 * 8 * 8

    def test_bn_elements_double_output(self):
        for geom in OFFLOADABLE_BLOCKS.values():
            assert geom.bn_elements == 2 * geom.output_elements

    def test_weight_counts(self):
        assert LAYER3_2.weight_count == 2 * 64 * 64 * 9
        assert LAYER3_2.bn_parameter_count == 4 * 64 * 2

    def test_weight_bytes_32bit(self):
        # Weights of layer3_2: 2*64*64*9 + BN params, at 4 bytes each.
        expected = (2 * 64 * 64 * 9 + 512) * 4
        assert LAYER3_2.weight_bytes() == expected

    def test_feature_map_bytes(self):
        assert LAYER3_2.feature_map_bytes() == 64 * 8 * 8 * 4

    def test_lookup(self):
        assert block_geometry("layer1") is LAYER1
        with pytest.raises(KeyError):
            block_geometry("layer9")

    def test_strided_geometry_out_size(self):
        from repro.fpga.geometry import BlockGeometry

        strided = BlockGeometry("ds", 16, 32, 32, 32, stride=2)
        assert strided.out_height == 16 and strided.out_width == 16
        assert strided.output_elements == 32 * 16 * 16

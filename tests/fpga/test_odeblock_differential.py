"""Differential test: HardwareODEBlock vs the float repro.nn reference.

Runs the bit-accurate fixed-point datapath against the floating-point
implementation of the same mathematics (``repro.nn.functional``) on random
inputs and asserts the deviation stays within the analytic bounds of
:mod:`repro.fixedpoint.errors`:

* per stage (conv, batch-norm), against the tight single-stage bounds;
* end to end, against the composed :func:`odeblock_error_bound` (worst-case
  interval propagation — rigorous, conservative);
* absolutely, for the paper's Q20 format (the datapath tracks float to a few
  1e-5, far below anything that would perturb a prediction).

The bounds are parameterised by magnitudes measured from the float reference
run (max weights/activations, per-channel sigma floors), so the test is
exact about what it claims.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.fixedpoint import FxArray, Q16, Q20, QFormat
from repro.fixedpoint.errors import (
    batch_norm_error_bound,
    conv_error_bound,
    odeblock_error_bound,
)
from repro.fpga import BlockWeights, HardwareODEBlock
from repro.fpga.geometry import BlockGeometry, LAYER3_2
from repro.fpga.ops import hw_batch_norm, hw_conv2d
from repro.nn import Tensor
from repro.nn import functional as F
from repro.nn.layers import Parameter

BN_EPS = 1e-5


def small_geometry() -> BlockGeometry:
    return BlockGeometry(name="layer3_2", in_channels=8, out_channels=8, height=4, width=4)


def float_conv(x: np.ndarray, weight: np.ndarray) -> np.ndarray:
    return F.conv2d(Tensor(x[None]), Parameter(weight), padding=1).data[0]


def float_bn(x: np.ndarray, gamma: np.ndarray, beta: np.ndarray) -> np.ndarray:
    channels = x.shape[0]
    return F.batch_norm2d(
        Tensor(x[None]), Parameter(gamma), Parameter(beta),
        np.zeros(channels), np.ones(channels), training=True, eps=BN_EPS,
    ).data[0]


def bn_magnitudes(x: np.ndarray) -> dict:
    """Per-channel |x - mean| amplitudes and sigma floors of the float input."""

    mean = x.mean(axis=(1, 2))
    var = x.var(axis=(1, 2))
    return {
        "centered_max": np.abs(x - mean[:, None, None]).max(axis=(1, 2)),
        "sigma_min": np.sqrt(var + BN_EPS),
    }


def float_reference_stages(weights: BlockWeights, z: np.ndarray) -> dict:
    """The float pipeline, stage by stage, with the magnitudes the bound needs."""

    a1 = float_conv(z, weights.conv1_weight)
    bn1 = float_bn(a1, weights.bn1_gamma, weights.bn1_beta)
    hidden = np.maximum(bn1, 0.0)
    a2 = float_conv(hidden, weights.conv2_weight)
    bn2 = float_bn(a2, weights.bn2_gamma, weights.bn2_beta)
    return {
        "conv1": a1, "bn1": bn1, "hidden": hidden, "conv2": a2, "output": bn2,
        "bn1_mag": bn_magnitudes(a1), "bn2_mag": bn_magnitudes(a2),
    }


def composed_bound(fmt: QFormat, weights: BlockWeights, z: np.ndarray, stages: dict):
    """Instantiate the end-to-end bound from the measured reference magnitudes."""

    k2 = weights.conv1_weight.shape[2] * weights.conv1_weight.shape[3]
    return odeblock_error_bound(
        fmt,
        fan_in1=weights.conv1_weight.shape[1] * k2,
        weight1_max=float(np.max(np.abs(weights.conv1_weight))),
        input_max=float(np.max(np.abs(z))),
        centered1_max=stages["bn1_mag"]["centered_max"],
        sigma1_min=stages["bn1_mag"]["sigma_min"],
        fan_in2=weights.conv2_weight.shape[1] * k2,
        weight2_max=float(np.max(np.abs(weights.conv2_weight))),
        hidden_max=float(np.max(np.abs(stages["hidden"]))),
        centered2_max=stages["bn2_mag"]["centered_max"],
        sigma2_min=stages["bn2_mag"]["sigma_min"],
        gamma1_max=float(np.max(np.abs(weights.bn1_gamma))),
        gamma2_max=float(np.max(np.abs(weights.bn2_gamma))),
    )


def make_case(seed: int):
    geometry = small_geometry()
    rng = np.random.default_rng(seed)
    weights = BlockWeights.random(geometry, rng, scale=0.1)
    z = rng.normal(0.0, 0.3, size=(8, 4, 4))
    return geometry, weights, z


class TestStageBounds:
    """Each pipeline stage, fed the quantised float reference input."""

    @pytest.mark.parametrize("fmt", [Q20, Q16], ids=["Q20", "Q16"])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_conv_stage_within_bound(self, fmt, seed):
        _, weights, z = make_case(seed)
        reference = float_conv(z, weights.conv1_weight)
        fixed = hw_conv2d(
            FxArray.from_float(z, fmt), FxArray.from_float(weights.conv1_weight, fmt), padding=1
        )
        error = float(np.max(np.abs(fixed.to_float() - reference)))
        bound = conv_error_bound(
            fmt,
            fan_in=weights.conv1_weight.shape[1] * 9,
            weight_max=float(np.max(np.abs(weights.conv1_weight))),
            input_max=float(np.max(np.abs(z))),
            input_error=fmt.resolution / 2.0,
        )
        assert error <= bound
        if fmt is Q20:
            assert bound < 1e-3  # the bound itself is tight, not vacuous

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_batch_norm_stage_within_bound(self, seed):
        _, weights, z = make_case(seed)
        a1 = float_conv(z, weights.conv1_weight)
        reference = float_bn(a1, weights.bn1_gamma, weights.bn1_beta)
        fixed = hw_batch_norm(
            FxArray.from_float(a1, Q20),
            FxArray.from_float(weights.bn1_gamma, Q20),
            FxArray.from_float(weights.bn1_beta, Q20),
            eps=BN_EPS,
        )
        error = float(np.max(np.abs(fixed.to_float() - reference)))
        mag = bn_magnitudes(a1)
        bound = batch_norm_error_bound(
            Q20,
            input_error=Q20.resolution / 2.0,
            centered_max=mag["centered_max"],
            sigma_min=mag["sigma_min"],
            gamma_max=float(np.max(np.abs(weights.bn1_gamma))),
        )
        assert error <= bound
        assert bound < 0.05  # tight against an O(1) output range


class TestEndToEnd:
    @pytest.mark.parametrize("fmt", [Q20, Q16], ids=["Q20", "Q16"])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_dynamics_error_within_composed_bound(self, fmt, seed):
        geometry, weights, z = make_case(seed)
        stages = float_reference_stages(weights, z)
        bound = composed_bound(fmt, weights, z, stages)
        hw = HardwareODEBlock(geometry, weights, n_units=4, qformat=fmt)
        error = float(np.max(np.abs(hw.dynamics(z) - stages["output"])))
        assert error <= bound.total
        if fmt is Q20:
            # The paper's format tracks float to a few 1e-5 on this block.
            assert error < 5e-4

    def test_full_size_layer3_2_within_bound(self):
        rng = np.random.default_rng(7)
        weights = BlockWeights.random(LAYER3_2, rng, scale=0.05)
        z = rng.normal(0.0, 0.3, size=(64, 8, 8))
        stages = float_reference_stages(weights, z)
        bound = composed_bound(Q20, weights, z, stages)
        hw = HardwareODEBlock(LAYER3_2, weights, n_units=16)
        error = float(np.max(np.abs(hw.dynamics(z) - stages["output"])))
        assert error <= bound.total
        assert error < 5e-4

    def test_residual_euler_step_error(self):
        """One Euler step adds the state error to the dynamics error."""

        geometry, weights, z = make_case(11)
        stages = float_reference_stages(weights, z)
        bound = composed_bound(Q20, weights, z, stages)
        hw = HardwareODEBlock(geometry, weights, n_units=4)
        out, _ = hw.execute(z, step_size=1.0, residual=True)
        float_step = z + stages["output"]
        # Residual add: input quantisation + dynamics error + one truncation.
        step_bound = bound.input_error + bound.total + Q20.resolution
        assert float(np.max(np.abs(out - float_step))) <= step_bound


class TestBoundStructure:
    def test_bound_tightens_with_fraction_bits(self):
        """More fraction bits -> a strictly smaller bound (footnote 2)."""

        _, weights, z = make_case(3)
        stages = float_reference_stages(weights, z)
        bounds = [
            composed_bound(fmt, weights, z, stages).total
            for fmt in (QFormat(32, 20), QFormat(16, 8), QFormat(12, 6))
        ]
        assert bounds[0] < bounds[1] < bounds[2]

    def test_stage_bounds_are_monotone_along_the_pipeline(self):
        """Errors can only accumulate: each stage's bound dominates its input's."""

        _, weights, z = make_case(5)
        stages = float_reference_stages(weights, z)
        b = composed_bound(Q20, weights, z, stages)
        assert b.input_error < b.conv1_error < b.bn1_error < b.conv2_error < b.bn2_error
        assert b.total == b.bn2_error

"""Tests for the simulated PL ODEBlock engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.fixedpoint import Q16, Q20
from repro.fpga import BlockWeights, HardwareODEBlock, LAYER3_2
from repro.fpga.geometry import BlockGeometry


@pytest.fixture
def small_geometry():
    """A scaled-down block so the functional tests stay fast."""

    return BlockGeometry(name="layer3_2", in_channels=8, out_channels=8, height=4, width=4)


@pytest.fixture
def small_hw_block(small_geometry, rng):
    weights = BlockWeights.random(small_geometry, rng, scale=0.1)
    return HardwareODEBlock(small_geometry, weights, n_units=4)


class TestConfigurationReports:
    def test_full_size_reports(self, rng):
        weights = BlockWeights.random(LAYER3_2, rng)
        hw = HardwareODEBlock(LAYER3_2, weights, n_units=16)
        assert hw.cycle_breakdown().total == pytest.approx(1.64e6, rel=0.02)
        assert hw.timing_report().meets_timing
        assert hw.resource_estimate().fits()
        assert hw.bram_plan.total_tiles > 0

    def test_conv_x32_fails_timing(self, rng):
        weights = BlockWeights.random(LAYER3_2, rng)
        hw = HardwareODEBlock(LAYER3_2, weights, n_units=32)
        assert not hw.timing_report().meets_timing


class TestExecution:
    def test_execute_shapes_and_report(self, small_hw_block, rng):
        z = rng.normal(0, 0.3, size=(8, 4, 4))
        out, report = small_hw_block.execute(z)
        assert out.shape == z.shape
        assert report.compute_seconds > 0
        assert report.transfer_seconds > 0
        assert report.total_seconds == pytest.approx(report.compute_seconds + report.transfer_seconds)
        assert small_hw_block.invocations == 1

    def test_execute_without_residual_returns_dynamics(self, small_hw_block, rng):
        z = rng.normal(0, 0.3, size=(8, 4, 4))
        f_only, _ = small_hw_block.execute(z, residual=False)
        with_res, _ = small_hw_block.execute(z, residual=True)
        np.testing.assert_allclose(with_res, z + f_only, atol=1e-4)

    def test_run_iterations_accumulates_time(self, small_hw_block, rng):
        z = rng.normal(0, 0.3, size=(8, 4, 4))
        _, total, reports = small_hw_block.run_iterations(z, iterations=3)
        assert len(reports) == 3
        assert total == pytest.approx(sum(r.total_seconds for r in reports))

    def test_iterations_equal_euler_unroll(self, small_hw_block, rng):
        """Repeated execution equals manually chaining Euler steps."""

        z = rng.normal(0, 0.2, size=(8, 4, 4))
        manual = z.copy()
        for i in range(3):
            manual, _ = small_hw_block.execute(manual, step_size=1.0, t=float(i))
        chained, _, _ = small_hw_block.run_iterations(z, iterations=3, step_size=1.0)
        np.testing.assert_allclose(chained, manual, atol=1e-9)

    def test_dynamic_bn_is_default(self, small_geometry, rng):
        weights = BlockWeights.random(small_geometry, rng)
        hw = HardwareODEBlock(small_geometry, weights)
        assert hw.dynamic_bn_stats is True

    def test_quantization_error_small_vs_float_reference(self, small_geometry, rng):
        """The Q20 datapath tracks a float implementation of the same maths."""

        weights = BlockWeights.random(small_geometry, rng, scale=0.1)
        hw = HardwareODEBlock(small_geometry, weights, n_units=4, dynamic_bn_stats=True)

        def float_reference(z):
            from repro.nn import Tensor
            from repro.nn import functional as F
            from repro.nn.layers import Parameter

            h = F.conv2d(Tensor(z[None]), Parameter(weights.conv1_weight), padding=1)
            h = F.batch_norm2d(
                h, Parameter(weights.bn1_gamma), Parameter(weights.bn1_beta),
                np.zeros(8), np.ones(8), training=True,
            ).relu()
            h = F.conv2d(h, Parameter(weights.conv2_weight), padding=1)
            h = F.batch_norm2d(
                h, Parameter(weights.bn2_gamma), Parameter(weights.bn2_beta),
                np.zeros(8), np.ones(8), training=True,
            )
            return h.data[0]

        z = rng.normal(0, 0.3, size=(8, 4, 4))
        error = hw.quantization_error(z, float_reference)
        assert error < 0.05

    def test_q16_increases_error_vs_q20(self, small_geometry, rng):
        weights = BlockWeights.random(small_geometry, rng, scale=0.1)
        z = rng.normal(0, 0.3, size=(8, 4, 4))
        out20 = HardwareODEBlock(small_geometry, weights, qformat=Q20).dynamics(z)
        out16 = HardwareODEBlock(small_geometry, weights, qformat=Q16).dynamics(z)
        assert np.max(np.abs(out20 - out16)) > 0


class TestTimeConcat:
    def test_time_concat_requires_wider_conv1(self, small_geometry, rng):
        c = small_geometry.out_channels
        weights = BlockWeights(
            conv1_weight=rng.normal(0, 0.1, size=(c, c + 1, 3, 3)),
            bn1_gamma=np.ones(c),
            bn1_beta=np.zeros(c),
            conv2_weight=rng.normal(0, 0.1, size=(c, c + 1, 3, 3)),
            bn2_gamma=np.ones(c),
            bn2_beta=np.zeros(c),
            bn1_mean=np.zeros(c),
            bn1_var=np.ones(c),
            bn2_mean=np.zeros(c),
            bn2_var=np.ones(c),
        )
        hw = HardwareODEBlock(
            small_geometry, weights, time_concat=True, dynamic_bn_stats=False
        )
        z = rng.normal(0, 0.3, size=(c, 4, 4))
        out_t0 = hw.dynamics(z, t=0.0)
        out_t1 = hw.dynamics(z, t=1.0)
        assert out_t0.shape == z.shape
        # A non-zero time channel must change the output.
        assert np.max(np.abs(out_t0 - out_t1)) > 1e-6

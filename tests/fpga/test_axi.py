"""Tests for the PS<->PL AXI/DMA transfer model."""

from __future__ import annotations

import pytest

from repro.fpga import LAYER1, LAYER3_2, AxiTransferConfig, AxiTransferModel


class TestPaperAssumption:
    """Section 4.4: 1 cycle per float32 at the 100 MHz PL clock."""

    def test_one_cycle_per_word(self):
        model = AxiTransferModel()
        assert model.transfer_cycles(1000) == 1000

    def test_layer3_2_round_trip(self):
        model = AxiTransferModel()
        est = model.block_round_trip(LAYER3_2)
        assert est.words_in == 64 * 8 * 8
        assert est.words_out == 64 * 8 * 8
        assert est.cycles == 2 * 4096
        assert est.seconds == pytest.approx(2 * 4096 / 100e6)

    def test_transfer_negligible_vs_compute(self):
        """The paper's transfer assumption keeps DMA ~0.5 % of the conv_x16 time."""

        from repro.fpga import OdeBlockCycleModel

        transfer = AxiTransferModel().block_round_trip(LAYER3_2).seconds
        compute = OdeBlockCycleModel().block_time_seconds(LAYER3_2, 16)
        assert transfer / compute < 0.01


class TestTransferModelBehaviour:
    def test_zero_words(self):
        assert AxiTransferModel().transfer_cycles(0) == 0.0

    def test_negative_words_rejected(self):
        with pytest.raises(ValueError):
            AxiTransferModel().transfer_cycles(-1)

    def test_setup_cycles_added_per_transfer(self):
        model = AxiTransferModel(AxiTransferConfig(setup_cycles=100.0))
        est = model.block_round_trip(LAYER1)
        assert est.cycles == LAYER1.input_elements + LAYER1.output_elements + 200.0

    def test_directions_can_be_disabled(self):
        model = AxiTransferModel()
        only_out = model.block_round_trip(LAYER1, include_input=False)
        assert only_out.words_in == 0 and only_out.words_out == LAYER1.output_elements

    def test_weights_load_one_time_cost(self):
        model = AxiTransferModel()
        est = model.weights_load(LAYER3_2)
        assert est.words_in == LAYER3_2.weight_count + LAYER3_2.bn_parameter_count
        assert est.seconds > 0

    def test_slower_assumption_scales_linearly(self):
        fast = AxiTransferModel(AxiTransferConfig(cycles_per_word=1.0))
        slow = AxiTransferModel(AxiTransferConfig(cycles_per_word=4.0))
        assert slow.block_round_trip(LAYER1).cycles == 4 * fast.block_round_trip(LAYER1).cycles

    def test_as_dict(self):
        d = AxiTransferModel().block_round_trip(LAYER1).as_dict()
        assert set(d) == {"words_in", "words_out", "cycles", "seconds"}

"""Tests for the device / board specifications and ResourceVector."""

from __future__ import annotations

import pytest

from repro.fpga import PYNQ_Z2, ZYNQ_XC7Z020, FpgaDevice, ResourceVector


class TestZynqDevice:
    """The XC7Z020 totals must be consistent with Table 3's percentages."""

    def test_totals(self):
        assert ZYNQ_XC7Z020.bram36 == 140
        assert ZYNQ_XC7Z020.dsp == 220
        assert ZYNQ_XC7Z020.lut == 53200
        assert ZYNQ_XC7Z020.ff == 106400

    def test_table3_percentage_consistency(self):
        # 56 BRAM = 40.00 %, 68 DSP = 30.91 %, 1486 LUT = 2.79 %, 835 FF = 0.78 %.
        used = ResourceVector(bram=56, dsp=68, lut=1486, ff=835)
        pct = used.utilization(ZYNQ_XC7Z020)
        assert pct["bram"] == pytest.approx(40.00, abs=0.01)
        assert pct["dsp"] == pytest.approx(30.91, abs=0.01)
        assert pct["lut"] == pytest.approx(2.79, abs=0.01)
        assert pct["ff"] == pytest.approx(0.78, abs=0.01)

    def test_bram_capacity_bytes(self):
        assert ZYNQ_XC7Z020.bram_bytes_total == 140 * 4096


class TestPynqBoard:
    def test_table1_specification(self):
        assert PYNQ_Z2.ps_clock_mhz == pytest.approx(650.0)
        assert PYNQ_Z2.ps_cores == 2
        assert PYNQ_Z2.dram_mb == 512
        assert PYNQ_Z2.pl_clock_mhz == pytest.approx(100.0)
        assert PYNQ_Z2.fpga is ZYNQ_XC7Z020


class TestResourceVector:
    def test_addition_and_scaling(self):
        a = ResourceVector(bram=10, dsp=5, lut=100, ff=200)
        b = ResourceVector(bram=1, dsp=2, lut=3, ff=4)
        total = a + b
        assert total.bram == 11 and total.dsp == 7 and total.lut == 103 and total.ff == 204
        doubled = a.scale(2.0)
        assert doubled.lut == 200

    def test_fits(self):
        small = ResourceVector(bram=10, dsp=10, lut=100, ff=100)
        huge = ResourceVector(bram=1000, dsp=10, lut=100, ff=100)
        assert small.fits(ZYNQ_XC7Z020)
        assert not huge.fits(ZYNQ_XC7Z020)

    def test_headroom(self):
        used = ResourceVector(bram=100, dsp=100, lut=1000, ff=1000)
        left = ZYNQ_XC7Z020.headroom(used)
        assert left.bram == 40 and left.dsp == 120

    def test_as_dict(self):
        d = ResourceVector(bram=1, dsp=2, lut=3, ff=4).as_dict()
        assert d == {"bram": 1, "dsp": 2, "lut": 3, "ff": 4}

"""Tests for the deployment weight-image export/import."""

from __future__ import annotations

import numpy as np
import pytest

from repro.fixedpoint import Q8, Q16, Q20
from repro.fpga import (
    BlockWeights,
    HardwareODEBlock,
    LAYER3_2,
    WeightImageHeader,
    export_block_weights,
    import_block_weights,
)
from repro.fpga.geometry import BlockGeometry


@pytest.fixture
def small_geometry():
    return BlockGeometry(name="layer3_2", in_channels=8, out_channels=8, height=4, width=4)


@pytest.fixture
def weights(small_geometry, rng):
    return BlockWeights.random(small_geometry, rng, scale=0.1)


class TestHeader:
    def test_pack_unpack_roundtrip(self):
        header = WeightImageHeader(64, 64, 3, 32, 20, time_concat=True)
        assert WeightImageHeader.unpack(header.pack()) == header

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError, match="expected 0x4F444557"):
            WeightImageHeader.unpack(b"\x00" * 32)

    def test_qformat_accessor(self):
        header = WeightImageHeader(64, 64, 3, 16, 8, time_concat=False)
        assert header.qformat == Q16


class TestRoundTrip:
    def test_q20_roundtrip_error_bounded_by_lsb(self, weights):
        image = export_block_weights(weights, Q20)
        restored, header = import_block_weights(image)
        assert header.word_length == 32 and header.fraction_bits == 20
        for name in ("conv1_weight", "conv2_weight", "bn1_gamma", "bn2_beta"):
            original = getattr(weights, name)
            recovered = getattr(restored, name)
            assert recovered.shape == original.shape
            assert np.max(np.abs(recovered - original)) <= Q20.resolution

    def test_missing_running_stats_default_to_identity(self, weights):
        assert weights.bn1_mean is None
        restored, _ = import_block_weights(export_block_weights(weights))
        np.testing.assert_allclose(restored.bn1_mean, 0.0)
        np.testing.assert_allclose(restored.bn1_var, 1.0)

    def test_time_concat_detected_from_shapes(self, small_geometry, rng):
        c = small_geometry.out_channels
        concat_weights = BlockWeights(
            conv1_weight=rng.normal(size=(c, c + 1, 3, 3)),
            bn1_gamma=np.ones(c),
            bn1_beta=np.zeros(c),
            conv2_weight=rng.normal(size=(c, c + 1, 3, 3)),
            bn2_gamma=np.ones(c),
            bn2_beta=np.zeros(c),
        )
        image = export_block_weights(concat_weights)
        restored, header = import_block_weights(image)
        assert header.time_concat is True
        assert restored.conv1_weight.shape == (c, c + 1, 3, 3)

    def test_narrow_format_smaller_image(self, weights):
        full = export_block_weights(weights, Q20)
        half = export_block_weights(weights, Q16)
        assert len(half) < len(full)

    def test_q8_roundtrip_error_bounded_by_q8_lsb(self, weights):
        restored, _ = import_block_weights(export_block_weights(weights, Q8))
        err = np.max(np.abs(restored.conv1_weight - weights.conv1_weight))
        assert err <= Q8.resolution

    def test_image_size_matches_layer3_2_weight_bytes(self, rng):
        """The full-size layer3_2 image is ~the BRAM weight footprint."""

        weights = BlockWeights.random(LAYER3_2, rng)
        image = export_block_weights(weights, Q20)
        expected_payload = (2 * 64 * 64 * 9 + 8 * 64) * 4  # convs + 8 BN vectors
        assert len(image) == expected_payload + 20  # + header


class TestIntegrationWithHardwareBlock:
    def test_exported_weights_reproduce_hardware_output(self, small_geometry, weights, rng):
        """Loading the exported image into a new HardwareODEBlock gives the
        same fixed-point output as the original weights."""

        original_hw = HardwareODEBlock(small_geometry, weights, n_units=4)
        restored, _ = import_block_weights(export_block_weights(weights, Q20))
        restored_hw = HardwareODEBlock(small_geometry, restored, n_units=4)
        z = rng.normal(0, 0.3, size=(8, 4, 4))
        np.testing.assert_allclose(original_hw.dynamics(z), restored_hw.dynamics(z), atol=1e-5)

"""Tests for the cycle-approximate datapath scheduler.

The key property: the schedule simulation (built from the datapath structure)
and the analytical cycle model (built from fitted constants) must agree with
each other and with the paper's published counts.
"""

from __future__ import annotations

import pytest

from repro.fpga import (
    LAYER1,
    LAYER2_2,
    LAYER3_2,
    PAPER_LAYER3_2_CYCLES,
    DatapathScheduler,
    OdeBlockCycleModel,
)


class TestChannelAssignment:
    def test_round_robin_balanced_when_divisible(self):
        sched = DatapathScheduler()
        assignment = sched.assign_output_channels(64, 16)
        assert len(assignment) == 16
        assert all(len(chs) == 4 for chs in assignment)
        flat = [c for chs in assignment for c in chs]
        assert sorted(flat) == list(range(64))

    def test_capped_by_channel_count(self):
        sched = DatapathScheduler()
        assignment = sched.assign_output_channels(16, 32)
        assert len(assignment) == 16
        assert all(len(chs) == 1 for chs in assignment)

    def test_imbalanced_assignment(self):
        sched = DatapathScheduler()
        assignment = sched.assign_output_channels(10, 4)
        sizes = sorted(len(chs) for chs in assignment)
        assert sizes == [2, 2, 3, 3]


class TestAgainstPaperAndAnalyticalModel:
    @pytest.mark.parametrize("n_units,published", sorted(PAPER_LAYER3_2_CYCLES.items()))
    def test_simulated_layer3_2_cycles_match_paper(self, n_units, published):
        trace = DatapathScheduler().simulate_block(LAYER3_2, n_units)
        assert trace.total_cycles == pytest.approx(published, rel=0.02)

    @pytest.mark.parametrize("layer", [LAYER1, LAYER2_2, LAYER3_2])
    @pytest.mark.parametrize("n_units", [1, 4, 8, 16])
    def test_simulation_matches_analytical_model(self, layer, n_units):
        simulated = DatapathScheduler().simulate_block(layer, n_units).total_cycles
        analytical = OdeBlockCycleModel().block_cycles(layer, n_units).total
        assert simulated == pytest.approx(analytical, rel=0.01)

    def test_full_utilization_when_divisible(self):
        trace = DatapathScheduler().simulate_block(LAYER3_2, 16)
        assert trace.utilization() == pytest.approx(1.0)

    def test_imbalance_lowers_utilization_and_raises_cycles(self):
        """A unit count that does not divide the channels leaves units idle."""

        sched = DatapathScheduler()
        balanced = sched.simulate_block(LAYER3_2, 16)
        imbalanced = sched.simulate_block(LAYER3_2, 24)  # 64 channels / 24 units
        assert imbalanced.utilization() < 1.0
        # 24 units should still not be slower than 16.
        assert imbalanced.conv_cycles <= balanced.conv_cycles
        # But it is no better than 22 units' ideal because of the imbalance:
        # the critical unit owns ceil(64/24) = 3 channels, same as at 22+.
        assert imbalanced.conv_cycles == pytest.approx(
            sched.simulate_block(LAYER3_2, 32).conv_cycles * 3 / 2, rel=0.01
        )


class TestSchedulerMechanics:
    def test_two_conv_passes_recorded(self):
        trace = DatapathScheduler().simulate_block(LAYER2_2, 8)
        assert len(trace.conv_passes) == 2
        assert trace.conv_cycles > 0 and trace.bn_cycles > 0

    def test_relu_fused_by_default(self):
        assert DatapathScheduler().simulate_block(LAYER1, 8).relu_cycles == 0.0
        unfused = DatapathScheduler(relu_fused=False).simulate_block(LAYER1, 8)
        assert unfused.relu_cycles > 0

    def test_invalid_issue_interval(self):
        with pytest.raises(ValueError):
            DatapathScheduler(issue_interval=0)

    def test_sweep_keys_and_monotonicity(self):
        sweep = DatapathScheduler().sweep(LAYER3_2)
        totals = [sweep[n].total_cycles for n in (1, 4, 8, 16, 32)]
        assert all(a > b for a, b in zip(totals, totals[1:]))

    def test_as_dict(self):
        d = DatapathScheduler().simulate_block(LAYER1, 4).as_dict()
        assert set(d) == {"conv_cycles", "bn_cycles", "relu_cycles", "total_cycles", "mac_utilization"}

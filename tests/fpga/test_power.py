"""Tests for the power / energy model."""

from __future__ import annotations

import pytest

from repro.core import ExecutionTimeModel
from repro.fpga import PowerModel, PowerModelConfig, ResourceEstimator, ResourceVector


@pytest.fixture(scope="module")
def power_model():
    return PowerModel()


@pytest.fixture(scope="module")
def layer3_2_resources():
    return ResourceEstimator().estimate("layer3_2", 16).resources


class TestComponentPowers:
    def test_pl_power_scales_with_resources(self, power_model):
        small = power_model.pl_power_w(ResourceVector(bram=10, dsp=10, lut=0, ff=0))
        large = power_model.pl_power_w(ResourceVector(bram=100, dsp=200, lut=0, ff=0))
        assert large > small > power_model.config.pl_static_w

    def test_custom_config(self):
        config = PowerModelConfig(ps_active_w=2.0, pl_static_w=0.0, pl_dynamic_base_w=0.0,
                                  pl_dynamic_per_dsp_w=0.0, pl_dynamic_per_bram_w=0.0)
        model = PowerModel(config)
        assert model.pl_power_w(ResourceVector(bram=100, dsp=100)) == 0.0


class TestEnergyEstimates:
    def test_software_only_energy(self, power_model):
        report = ExecutionTimeModel().report("ResNet", 56)
        estimate = power_model.energy_without_pl(report)
        assert estimate.pl_energy_j == 0.0
        assert estimate.ps_energy_j == pytest.approx(1.3 * report.total_without_pl)
        assert estimate.average_power_w == pytest.approx(1.3)

    def test_offloaded_energy_lower_for_rodenet3(self, power_model, layer3_2_resources):
        """The offload saves energy as well as time for rODENet-3-56."""

        comparison = power_model.compare("rODENet-3", 56, layer3_2_resources)
        assert comparison["energy_ratio"] > 2.0
        assert comparison["time_speedup"] == pytest.approx(2.66, abs=0.05)

    def test_energy_ratio_exceeds_time_speedup(self, power_model, layer3_2_resources):
        """While the PL computes, the PS idles at ~0.3 W instead of 1.3 W, so
        the energy ratio is even better than the time speedup."""

        comparison = power_model.compare("rODENet-3", 56, layer3_2_resources)
        assert comparison["energy_ratio"] > comparison["time_speedup"]

    def test_resnet_comparison_is_neutral(self, power_model):
        comparison = power_model.compare("ResNet", 56, ResourceVector())
        # No offload target: identical time, small PL static overhead only.
        assert comparison["time_speedup"] == 1.0
        assert comparison["energy_ratio"] == pytest.approx(1.0, rel=0.2)

    def test_energy_estimate_as_dict(self, power_model, layer3_2_resources):
        report = ExecutionTimeModel().report("rODENet-3", 20)
        estimate = power_model.energy_with_pl(report, layer3_2_resources)
        d = estimate.as_dict()
        assert d["total_energy_J"] == pytest.approx(d["ps_energy_J"] + d["pl_energy_J"])
        assert d["average_power_W"] < 1.3  # mostly-idle PS pulls the average down

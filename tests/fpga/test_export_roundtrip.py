"""Property-based round-trip coverage of the weight-image format.

Closes the coverage gap: the round trip must hold over the full
``QFormat`` x ``time_concat`` x geometry space — including non-default word
lengths — and malformed headers must raise *named* errors that state the
expected values.
"""

import struct

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fixedpoint import QFormat
from repro.fpga import (
    WeightImageError,
    WeightImageHeader,
    WeightImageMagicError,
    WeightImageVersionError,
    export_block_weights,
    import_block_weights,
)
from repro.fpga.odeblock_hw import BlockWeights


def _weights(rng, channels, kernel, time_concat, with_stats):
    in_ch = channels + (1 if time_concat else 0)
    shape = (channels, in_ch, kernel, kernel)
    stats = {}
    if with_stats:
        stats = dict(
            bn1_mean=rng.normal(0, 0.5, channels),
            bn1_var=np.abs(rng.normal(1, 0.2, channels)),
            bn2_mean=rng.normal(0, 0.5, channels),
            bn2_var=np.abs(rng.normal(1, 0.2, channels)),
        )
    return BlockWeights(
        conv1_weight=rng.normal(0, 0.5, shape),
        bn1_gamma=rng.normal(1, 0.2, channels),
        bn1_beta=rng.normal(0, 0.2, channels),
        conv2_weight=rng.normal(0, 0.5, shape),
        bn2_gamma=rng.normal(1, 0.2, channels),
        bn2_beta=rng.normal(0, 0.2, channels),
        **stats,
    )


#: Word lengths off the beaten path on purpose (the shipped ladder only
#: exercises 8..32).
qformats = st.tuples(
    st.sampled_from([4, 6, 8, 10, 12, 16, 18, 24, 32, 48, 64]),
    st.integers(min_value=1, max_value=6),
).map(lambda wl_fb: QFormat(wl_fb[0], min(wl_fb[1], wl_fb[0] - 2)))


@settings(max_examples=60, deadline=None)
@given(
    qformat=qformats,
    channels=st.integers(min_value=1, max_value=4),
    kernel=st.sampled_from([1, 3]),
    time_concat=st.booleans(),
    with_stats=st.booleans(),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_round_trip_is_quantisation_exact(qformat, channels, kernel, time_concat, with_stats, seed):
    rng = np.random.default_rng(seed)
    weights = _weights(rng, channels, kernel, time_concat, with_stats)
    image = export_block_weights(weights, qformat)

    imported, header = import_block_weights(image)
    assert header.qformat == qformat
    assert header.out_channels == channels
    assert header.kernel == kernel
    assert header.time_concat == time_concat

    # Importing gives the dequantised weights: exactly to_float(to_fixed(w)).
    for name in ("conv1_weight", "conv2_weight", "bn1_gamma", "bn1_beta",
                 "bn2_gamma", "bn2_beta"):
        original = getattr(weights, name)
        expected = qformat.to_float(qformat.to_fixed(original))
        np.testing.assert_array_equal(getattr(imported, name), expected, err_msg=name)

    # Second trip is a fixed point: export(import(image)) == image, byte for byte.
    assert export_block_weights(imported, qformat) == image


@settings(max_examples=20, deadline=None)
@given(qformat=qformats, seed=st.integers(min_value=0, max_value=2**16))
def test_missing_stats_default_to_identity(qformat, seed):
    rng = np.random.default_rng(seed)
    weights = _weights(rng, 2, 3, False, with_stats=False)
    imported, _ = import_block_weights(export_block_weights(weights, qformat))
    np.testing.assert_array_equal(imported.bn1_mean, np.zeros(2))
    np.testing.assert_array_equal(imported.bn1_var, qformat.to_float(qformat.to_fixed(np.ones(2))))


def _valid_image():
    rng = np.random.default_rng(0)
    return export_block_weights(_weights(rng, 2, 3, False, False), QFormat(16, 8))


def test_bad_magic_raises_named_error_listing_expected():
    image = bytearray(_valid_image())
    image[:4] = b"JUNK"
    with pytest.raises(WeightImageMagicError) as exc:
        import_block_weights(bytes(image))
    assert "0x4F444557" in str(exc.value)
    assert "ODEW" in str(exc.value)
    assert exc.value.expected == 0x4F444557


def test_bad_version_raises_named_error_listing_expected():
    image = bytearray(_valid_image())
    # Version is the u16 right after the u32 magic.
    struct.pack_into("<H", image, 4, 7)
    with pytest.raises(WeightImageVersionError) as exc:
        import_block_weights(bytes(image))
    assert "version 7" in str(exc.value)
    assert "expected 1" in str(exc.value)
    assert exc.value.expected == 1


def test_truncated_header_raises_weight_image_error():
    with pytest.raises(WeightImageError, match="truncated"):
        WeightImageHeader.unpack(b"\x57")


def test_named_errors_are_value_errors():
    # Callers that caught the old plain ValueError keep working.
    for exc in (WeightImageError, WeightImageMagicError, WeightImageVersionError):
        assert issubclass(exc, ValueError)

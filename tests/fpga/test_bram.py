"""Tests for the BRAM allocation planner."""

from __future__ import annotations

import pytest

from repro.fixedpoint import Q8, Q16, Q20
from repro.fpga import LAYER1, LAYER2_2, LAYER3_2, ZYNQ_XC7Z020, plan_block_allocation, tiles_for_bytes
from repro.fpga.bram import BRAM36_BYTES


class TestTilesForBytes:
    def test_zero_bytes_needs_no_tiles(self):
        assert tiles_for_bytes(0) == 0

    def test_exact_multiple(self):
        assert tiles_for_bytes(BRAM36_BYTES) == 1
        assert tiles_for_bytes(4 * BRAM36_BYTES) == 4

    def test_rounds_up(self):
        assert tiles_for_bytes(1) == 1
        assert tiles_for_bytes(BRAM36_BYTES + 1) == 2

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            tiles_for_bytes(-1)


class TestBlockAllocation:
    def test_plan_contains_expected_regions(self):
        plan = plan_block_allocation(LAYER3_2, n_units=16)
        names = {r.name for r in plan.regions}
        assert {"conv1_weights", "conv2_weights", "bn_parameters", "input_fmap", "intermediate_fmap", "output_fmap"} <= names

    def test_layer3_2_weights_dominate(self):
        plan = plan_block_allocation(LAYER3_2, n_units=16)
        weights = plan.region("conv1_weights").tiles + plan.region("conv2_weights").tiles
        fmaps = sum(r.tiles for r in plan.regions if r.name.endswith("fmap"))
        assert weights > fmaps

    def test_layer1_feature_maps_dominate(self):
        plan = plan_block_allocation(LAYER1, n_units=16)
        weights = plan.region("conv1_weights").tiles + plan.region("conv2_weights").tiles
        fmaps = sum(r.tiles for r in plan.regions if r.name.endswith("fmap"))
        assert fmaps > weights

    def test_all_single_layers_fit_in_device(self):
        for geom in (LAYER1, LAYER2_2, LAYER3_2):
            plan = plan_block_allocation(geom, n_units=16)
            assert plan.fits(ZYNQ_XC7Z020), geom.name

    def test_layer3_2_is_largest(self):
        totals = {g.name: plan_block_allocation(g).total_tiles for g in (LAYER1, LAYER2_2, LAYER3_2)}
        assert totals["layer3_2"] == max(totals.values())

    def test_total_bytes_consistent(self):
        plan = plan_block_allocation(LAYER2_2)
        assert plan.total_bytes == sum(r.num_bytes for r in plan.regions)
        assert plan.total_tiles == sum(r.tiles for r in plan.regions)

    def test_unknown_region_lookup_raises(self):
        plan = plan_block_allocation(LAYER1)
        with pytest.raises(KeyError):
            plan.region("nonexistent")

    def test_unknown_region_error_lists_available_names(self):
        plan = plan_block_allocation(LAYER1)
        with pytest.raises(KeyError) as excinfo:
            plan.region("nonexistent")
        message = str(excinfo.value)
        for name in ("conv1_weights", "conv2_weights", "bn_parameters", "input_fmap"):
            assert name in message

    def test_unknown_region_error_on_empty_plan(self):
        from repro.fpga import BramPlan

        with pytest.raises(KeyError, match=r"\(none\)"):
            BramPlan(block="empty").region("anything")

    def test_utilization_percent(self):
        plan = plan_block_allocation(LAYER3_2)
        pct = plan.utilization_percent(ZYNQ_XC7Z020)
        assert 0 < pct <= 100

    def test_reduced_wordlength_reduces_tiles(self):
        """Footnote 2: 16-bit (or less) weights would fit more layers in BRAM."""

        full = plan_block_allocation(LAYER3_2, qformat=Q20).total_tiles
        half = plan_block_allocation(LAYER3_2, qformat=Q16).total_tiles
        quarter = plan_block_allocation(LAYER3_2, qformat=Q8).total_tiles
        assert full > half > quarter

    def test_extra_feature_map_buffers_increase_tiles(self):
        base = plan_block_allocation(LAYER1, feature_map_buffers=3).total_tiles
        more = plan_block_allocation(LAYER1, feature_map_buffers=4).total_tiles
        assert more > base

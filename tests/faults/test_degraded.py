"""Degraded-mode serving: injection, drain/re-dispatch, fallback, recovery."""

from __future__ import annotations

import pytest

from repro.api import Evaluator
from repro.faults import AxiDegradation, DmaCorruption, PsCoreLoss, ReplicaDeath
from repro.sim import AxiBus, Resource, SimScenario, Simulator, simulate


@pytest.fixture(scope="module")
def evaluator():
    return Evaluator()


def scenario(**overrides) -> SimScenario:
    base = dict(
        model="rODENet-3",
        depth=20,
        arrival="poisson",
        arrival_rate_hz=3.0,
        n_requests=40,
        replicas=2,
        ps_cores=2,
        seed=0,
    )
    base.update(overrides)
    return SimScenario(**base)


class TestResourcePrimitives:
    def test_set_capacity_shrink_drains_without_preemption(self):
        sim = Simulator()
        res = Resource(sim, capacity=2)

        def hold(seconds):
            yield res.request()
            yield sim.timeout(seconds)
            res.release()

        sim.process(hold(1.0))
        sim.process(hold(2.0))
        sim.run(until=0.5)
        res.set_capacity(1)
        # Both holders keep running over capacity; no user is evicted.
        assert res.users == 2
        blocked = res.request()
        sim.run(until=1.5)
        # One release only drains the over-capacity pool; the waiter holds.
        assert res.users == 1 and not blocked.triggered
        sim.run()
        assert blocked.processed

    def test_set_capacity_grow_wakes_waiters(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        first, second = res.request(), res.request()
        sim.run()
        assert first.processed and not second.triggered
        res.set_capacity(2)
        sim.run()
        assert second.processed

    def test_bus_degrade_token_protocol(self):
        sim = Simulator()
        bus = AxiBus(sim, channels=1)
        token = bus.degrade(4.0)
        assert token == 1.0 and bus.slowdown == 4.0
        bus.degrade(token)
        assert bus.slowdown == 1.0

    def test_degraded_bus_stretches_a_burst(self):
        def timed_transfer(slowdown):
            sim = Simulator()
            bus = AxiBus(sim, channels=1)
            bus.degrade(slowdown)
            sim.process(bus.transfer(100, seconds=0.5))
            sim.run()
            return sim.now

        assert timed_transfer(1.0) == pytest.approx(0.5)
        assert timed_transfer(3.0) == pytest.approx(1.5)


class TestReplicaDeath:
    def test_drain_and_redispatch_completes_every_request(self, evaluator):
        mode = ReplicaDeath(rate_per_hour=60.0)
        nominal = simulate(scenario(), evaluator=evaluator)
        report = simulate(
            scenario(), evaluator=evaluator,
            faults=[(mode, nominal.horizon_s * 0.3)],
        )
        assert report.requests["completed"] == report.requests["offered"] == 40
        assert report.faults["replicas_alive_end"] == 1
        assert report.faults["replica_downtime_s"] > 0
        # The survivor carries the load: the run degrades, never deadlocks.
        assert report.latency.mean >= nominal.latency.mean

    def test_injection_log_records_the_event(self, evaluator):
        report = simulate(
            scenario(), evaluator=evaluator,
            faults=[(ReplicaDeath(rate_per_hour=60.0), 1.0)],
        )
        (entry,) = report.faults["injections"]
        assert entry["mode"] == "replica_death"
        assert entry["t_inject"] == 1.0
        assert entry["cleared_at"] is None  # permanent fault

    def test_dead_fleet_falls_back_to_the_ps(self, evaluator):
        mode = ReplicaDeath(rate_per_hour=60.0)
        report = simulate(
            scenario(replicas=1), evaluator=evaluator,
            faults=[(mode, 2.0)],
        )
        assert report.requests["completed"] == 40
        assert report.faults["replicas_alive_end"] == 0
        assert report.faults["ps_fallback_served"] > 0
        # Software inference is far slower than the PL path.
        nominal = simulate(scenario(replicas=1), evaluator=evaluator)
        assert report.latency.maximum > nominal.latency.maximum

    def test_transient_death_revives_after_duration(self, evaluator):
        mode = ReplicaDeath(rate_per_hour=60.0, duration_s=2.0)
        report = simulate(scenario(), evaluator=evaluator, faults=[(mode, 1.0)])
        assert report.requests["completed"] == 40
        assert report.faults["replicas_alive_end"] == 2
        (entry,) = report.faults["injections"]
        assert entry["cleared_at"] == pytest.approx(3.0)
        assert report.faults["replica_downtime_s"] == pytest.approx(2.0)

    def test_round_robin_skips_the_dead_replica(self, evaluator):
        report = simulate(
            scenario(policy="round_robin"), evaluator=evaluator,
            faults=[(ReplicaDeath(rate_per_hour=60.0), 2.0)],
        )
        assert report.requests["completed"] == 40

    def test_batched_policy_survives_a_death(self, evaluator):
        report = simulate(
            scenario(policy="batched", batch_size=4, arrival_rate_hz=8.0),
            evaluator=evaluator,
            faults=[(ReplicaDeath(rate_per_hour=60.0), 1.0)],
        )
        assert report.requests["completed"] == 40


class TestOtherModes:
    def test_axi_degradation_slows_the_run(self, evaluator):
        nominal = simulate(scenario(), evaluator=evaluator)
        degraded = simulate(
            scenario(), evaluator=evaluator,
            faults=[(AxiDegradation(rate_per_hour=4.0, burst_bits=2), 0.0)],
        )
        assert degraded.requests["completed"] == 40
        assert degraded.latency.mean > nominal.latency.mean

    def test_ps_core_loss_never_drops_below_one_core(self, evaluator):
        report = simulate(
            scenario(ps_cores=2), evaluator=evaluator,
            faults=[(PsCoreLoss(rate_per_hour=1.0, cores_lost=8), 0.0)],
        )
        assert report.requests["completed"] == 40

    def test_corruption_marks_requests_as_slo_violations(self, evaluator):
        # A sign-bit flip always lands in the integer bits => always severe.
        mode = DmaCorruption(rate_per_hour=6.0, bit=31)
        report = simulate(
            scenario(slo_s=1e6), evaluator=evaluator,
            faults=[(mode, 0.0)], fault_seed=7,
        )
        assert report.faults["corrupted_words"] > 0
        assert report.faults["corrupted_requests"] == report.requests["measured"]
        # Corrupted output violates even an absurdly generous SLO.
        assert report.slo["violation_fraction"] == 1.0

    def test_fault_seed_controls_the_corruption_stream(self, evaluator):
        def corrupted(fault_seed):
            report = simulate(
                scenario(), evaluator=evaluator,
                faults=[DmaCorruption(rate_per_hour=6.0)], fault_seed=fault_seed,
            )
            return report.faults["corrupted_requests"]

        assert corrupted(0) == corrupted(0)  # reproducible
        seeds = {corrupted(s) for s in range(6)}
        assert len(seeds) > 1  # and actually seed-dependent

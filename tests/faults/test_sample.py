"""Property tests of fault-scenario time sampling (fmdtools-style)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import (
    SAMPLING_METHODS,
    FaultSample,
    ReplicaDeath,
    default_fault_domain,
    injection_times,
    sample_faults,
)

horizons = st.floats(min_value=1e-3, max_value=1e5, allow_nan=False, allow_infinity=False)
counts = st.integers(min_value=1, max_value=12)
methods = st.sampled_from(SAMPLING_METHODS)


@settings(max_examples=200, deadline=None)
@given(horizons, counts, methods)
def test_weights_sum_to_one(horizon, n, method):
    _, weights = injection_times(horizon, n, method)
    assert len(weights) == n
    assert sum(weights) == pytest.approx(1.0)
    assert all(w > 0 for w in weights)


@settings(max_examples=200, deadline=None)
@given(horizons, counts, methods)
def test_times_lie_strictly_inside_the_horizon(horizon, n, method):
    times, _ = injection_times(horizon, n, method)
    assert len(times) == n
    assert all(0.0 < t < horizon for t in times)
    # Sorted, distinct nodes for either rule.
    assert times == sorted(times)
    assert len(set(times)) == n


@settings(max_examples=100, deadline=None)
@given(horizons, counts, methods)
def test_zero_rate_modes_never_fire(horizon, n, method):
    modes = [ReplicaDeath(rate_per_hour=0.0), ReplicaDeath(rate_per_hour=1.0)]
    samples = sample_faults(modes, horizon, n, method)
    assert len(samples) == n  # only the live-rate mode expands
    assert all(s.mode.rate_per_hour > 0 for s in samples)
    assert sum(s.weight for s in samples) == pytest.approx(1.0)


class TestSamplingRules:
    def test_even_is_the_midpoint_rule(self):
        times, weights = injection_times(10.0, 4, "even")
        assert times == [1.25, 3.75, 6.25, 8.75]
        assert weights == [0.25] * 4

    def test_quadrature_single_node_is_the_midpoint(self):
        times, weights = injection_times(10.0, 1, "quadrature")
        assert times == [pytest.approx(5.0)]
        assert weights == [pytest.approx(1.0)]

    def test_quadrature_integrates_a_cubic_exactly(self):
        # n Gauss-Legendre nodes are exact up to degree 2n-1; with n=2 the
        # weighted sum of t^3 over [0, h] must equal the true mean h^3/4.
        times, weights = injection_times(2.0, 2, "quadrature")
        estimate = sum(w * t**3 for t, w in zip(times, weights))
        assert estimate == pytest.approx(2.0**3 / 4.0)

    def test_default_domain_expansion_is_per_mode(self):
        samples = sample_faults(default_fault_domain(), 30.0, n_samples=3)
        assert len(samples) == 3 * len(default_fault_domain())
        assert all(isinstance(s, FaultSample) for s in samples)

    def test_sample_serialises(self):
        (s, *_) = sample_faults([ReplicaDeath(rate_per_hour=2.0)], 10.0, 1)
        d = s.as_dict()
        assert d["mode"]["kind"] == "replica_death"
        assert d["t_inject"] == pytest.approx(5.0)
        assert d["weight"] == 1.0


class TestValidation:
    def test_bad_horizon_rejected(self):
        with pytest.raises(ValueError, match="horizon_s"):
            injection_times(0.0)

    def test_bad_count_rejected(self):
        with pytest.raises(ValueError, match="n_samples"):
            injection_times(1.0, 0)

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError, match="sampling method"):
            injection_times(1.0, 3, "sobol")

"""Tests of the ``sim --faults`` FMEA path and the ``faults`` registry command."""

from __future__ import annotations

import json

import pytest

from repro.cli import main


def run_cli(capsys, *argv) -> str:
    assert main(list(argv)) == 0
    return capsys.readouterr().out


BASE = (
    "sim", "rODENet-3", "--depth", "20", "--arrivals", "poisson",
    "--rate", "3", "--requests", "12", "--ps-cores", "2",
)


class TestFaultsRegistryCommand:
    def test_lists_every_registered_mode(self, capsys):
        out = run_cli(capsys, "faults")
        for kind in ("replica_death", "axi_degraded", "ps_core_loss",
                     "dma_corruption"):
            assert kind in out
        assert "KIND[:RATE[:PARAM]]" in out

    def test_json_output(self, capsys):
        records = json.loads(run_cli(capsys, "faults", "--json"))
        assert len(records) == 4
        assert all(r["default_rate_per_hour"] > 0 for r in records)


class TestSimFaults:
    def test_fmea_table_output(self, capsys):
        out = run_cli(
            capsys, *BASE, "--faults", "replica_death:60", "--fault-samples", "1",
        )
        assert "FMEA:" in out
        assert "replica_death" in out
        assert "total expected SLO-violation fraction" in out

    def test_fmea_json_schema(self, capsys):
        out = run_cli(
            capsys, *BASE, "--faults", "replica_death:60", "--fault-samples", "2",
            "--slo-ms", "600", "--json",
        )
        study = json.loads(out)
        for key in ("scenario", "slo_s", "nominal", "fmea", "samples",
                    "expected_slo_violation"):
            assert key in study
        assert study["slo_s"] == pytest.approx(0.6)
        (row,) = study["fmea"]
        assert row["mode"] == "replica_death"
        assert row["samples"] == 2
        assert len(study["samples"]) == 2
        assert study["nominal"]["requests"]["completed"] == 12
        # The injection metadata survives into each sample's fault log.
        assert study["nominal"]["reproducibility"]["seed"] == 0

    def test_bare_faults_flag_runs_the_default_domain(self, capsys):
        out = run_cli(
            capsys, *BASE, "--faults", "--fault-samples", "1", "--json",
        )
        study = json.loads(out)
        assert {row["mode"] for row in study["fmea"]} == {
            "replica_death", "axi_degraded", "ps_core_loss", "dma_corruption",
        }

    def test_zero_fault_cli_run_matches_the_plain_sim(self, capsys):
        # Same scenario, same explicit SLO: the nominal report inside the
        # FMEA payload must be byte-for-byte the plain sim payload.
        plain = json.loads(run_cli(capsys, *BASE, "--slo-ms", "600", "--json"))
        study = json.loads(run_cli(
            capsys, *BASE, "--slo-ms", "600", "--faults", "replica_death:0",
            "--json",
        ))
        assert study["nominal"] == plain
        assert study["expected_slo_violation"] == 0.0

    def test_csv_output(self, capsys):
        out = run_cli(
            capsys, *BASE, "--faults", "replica_death:60", "--fault-samples", "1",
            "--format", "csv",
        )
        header, row = out.strip().splitlines()
        assert header.split(",")[0] == "mode"
        assert row.split(",")[0] == "replica_death"


class TestErrors:
    @pytest.mark.parametrize(
        "argv, fragment",
        [
            (list(BASE) + ["--faults", "gamma_ray"], "unknown fault mode"),
            (list(BASE) + ["--faults", "replica_death:fast"], "bad fault spec"),
            (list(BASE) + ["--faults", "a:1:2:3"], "bad fault spec"),
            (
                ["sim", "rODENet-3", "--depth", "20", "--requests", "4",
                 "--board", "PYNQ-Z2,ZCU104", "--faults"],
                "one board at a time",
            ),
        ],
    )
    def test_bad_usage_exits_2(self, capsys, argv, fragment):
        assert main(argv) == 2
        err = capsys.readouterr().err
        assert "error:" in err and fragment in err

"""Tests of the fault domain: mode validation, bit flips, the registry."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import (
    FAULT_MODE_KINDS,
    AxiDegradation,
    DmaCorruption,
    FaultMode,
    PsCoreLoss,
    ReplicaDeath,
    default_fault_domain,
    flip_bit,
    make_fault_mode,
    parse_fault_specs,
)
from repro.fixedpoint.qformat import QFormat
from repro.fpga.axi import AxiTransferConfig, AxiTransferModel


class TestFlipBit:
    @settings(max_examples=200, deadline=None)
    @given(
        st.integers(min_value=2, max_value=32),
        st.data(),
    )
    def test_involution_and_range(self, word_length, data):
        q = QFormat(word_length=word_length, fraction_bits=word_length - 1)
        fixed = data.draw(st.integers(min_value=q.min_int, max_value=q.max_int))
        bit = data.draw(st.integers(min_value=0, max_value=word_length - 1))
        flipped = flip_bit(q, fixed, bit)
        assert q.min_int <= flipped <= q.max_int
        assert flipped != fixed
        # Flipping the same bit twice restores the word.
        assert flip_bit(q, flipped, bit) == fixed

    def test_lsb_flip_of_zero(self):
        q = QFormat(word_length=16, fraction_bits=6)
        assert flip_bit(q, 0, 0) == 1

    def test_sign_bit_flip_of_zero_is_min_int(self):
        q = QFormat(word_length=16, fraction_bits=6)
        assert flip_bit(q, 0, q.word_length - 1) == q.min_int

    def test_out_of_range_bit_rejected(self):
        q = QFormat(word_length=16, fraction_bits=6)
        with pytest.raises(ValueError, match="bit must be"):
            flip_bit(q, 0, 16)
        with pytest.raises(ValueError, match="bit must be"):
            flip_bit(q, 0, -1)


class TestModeValidation:
    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError, match="rate_per_hour"):
            ReplicaDeath(rate_per_hour=-1.0)

    def test_non_positive_duration_rejected(self):
        with pytest.raises(ValueError, match="duration_s"):
            ReplicaDeath(duration_s=0.0)

    def test_zero_rate_is_legal(self):
        assert ReplicaDeath(rate_per_hour=0.0).rate_per_hour == 0.0

    def test_bad_burst_bits_rejected(self):
        with pytest.raises(ValueError, match="burst_bits"):
            AxiDegradation(burst_bits=0)

    def test_bad_cores_lost_rejected(self):
        with pytest.raises(ValueError, match="cores_lost"):
            PsCoreLoss(cores_lost=0)

    def test_modes_are_frozen_and_hashable(self):
        mode = DmaCorruption(rate_per_hour=3.0, bit=7)
        assert hash(mode) == hash(DmaCorruption(rate_per_hour=3.0, bit=7))
        with pytest.raises(Exception):
            mode.bit = 3

    def test_as_dict_carries_kind_and_params(self):
        d = AxiDegradation(rate_per_hour=2.5, burst_bits=4).as_dict()
        assert d["kind"] == "axi_degraded"
        assert d["rate_per_hour"] == 2.5
        assert d["burst_bits"] == 4


class TestAxiSlowdownFactor:
    def test_halving_the_burst_width_doubles_transfer_time(self):
        model = AxiTransferModel()  # 32-bit words, no setup cycles
        assert AxiDegradation(burst_bits=16).slowdown_factor(model) == pytest.approx(2.0)
        assert AxiDegradation(burst_bits=8).slowdown_factor(model) == pytest.approx(4.0)

    def test_full_width_is_the_identity(self):
        model = AxiTransferModel()
        assert AxiDegradation(burst_bits=32).slowdown_factor(model) == 1.0
        assert AxiDegradation(burst_bits=64).slowdown_factor(model) == 1.0

    def test_setup_cycles_damp_the_slowdown(self):
        # Fixed per-transfer setup is not narrowed, so the observed ratio
        # sits strictly between 1 and the pure per-word ratio.
        sticky = AxiTransferModel(AxiTransferConfig(setup_cycles=10_000.0))
        factor = AxiDegradation(burst_bits=16).slowdown_factor(sticky)
        assert 1.0 < factor < 2.0


class TestRegistry:
    def test_every_kind_is_registered(self):
        assert FAULT_MODE_KINDS == (
            "replica_death", "axi_degraded", "ps_core_loss", "dma_corruption",
        )

    def test_default_domain_covers_all_kinds_with_positive_rates(self):
        domain = default_fault_domain()
        assert [m.kind for m in domain] == list(FAULT_MODE_KINDS)
        assert all(isinstance(m, FaultMode) for m in domain)
        assert all(m.rate_per_hour > 0 for m in domain)

    def test_make_fault_mode_maps_param_per_kind(self):
        assert make_fault_mode("replica_death", 5.0, 1).replica == 1
        assert make_fault_mode("axi_degraded", 5.0, 4).burst_bits == 4
        assert make_fault_mode("ps_core_loss", 5.0, 2).cores_lost == 2
        assert make_fault_mode("dma_corruption", 5.0, 30).bit == 30

    def test_make_fault_mode_defaults_rate_from_registry(self):
        mode = make_fault_mode("replica_death")
        assert mode.rate_per_hour == default_fault_domain()[0].rate_per_hour

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault mode"):
            make_fault_mode("gamma_ray")


class TestParseFaultSpecs:
    def test_full_spec(self):
        (mode,) = parse_fault_specs(["axi_degraded:12:4"])
        assert mode.kind == "axi_degraded"
        assert mode.rate_per_hour == 12.0
        assert mode.burst_bits == 4

    def test_kind_only_uses_default_rate(self):
        (mode,) = parse_fault_specs(["ps_core_loss"])
        assert mode.kind == "ps_core_loss"
        assert mode.rate_per_hour > 0

    def test_empty_list_is_the_default_domain(self):
        assert parse_fault_specs([]) == default_fault_domain()

    def test_duration_applies_to_every_mode(self):
        modes = parse_fault_specs(["replica_death:2", "dma_corruption"], duration_s=1.5)
        assert all(m.duration_s == 1.5 for m in modes)
        # ... including the default-domain expansion.
        assert all(m.duration_s == 1.5 for m in parse_fault_specs([], duration_s=1.5))

    @pytest.mark.parametrize("spec", ["", "a:b:c:d", "replica_death:fast", "nope:1"])
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(ValueError):
            parse_fault_specs([spec])

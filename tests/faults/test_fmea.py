"""FMEA tabulation: zero-fault identity, weighting, the resilience knee."""

from __future__ import annotations

import json

import pytest

from repro.api import Evaluator
from repro.faults import (
    DEFAULT_SLO_FACTOR,
    ReplicaDeath,
    default_fault_domain,
    run_fmea,
)
from repro.sim import SimScenario, build_service_plan, simulate


@pytest.fixture(scope="module")
def evaluator():
    return Evaluator()


def scenario(**overrides) -> SimScenario:
    base = dict(
        model="rODENet-3",
        depth=20,
        arrival="poisson",
        arrival_rate_hz=3.0,
        n_requests=40,
        replicas=1,
        ps_cores=2,
        seed=0,
    )
    base.update(overrides)
    return SimScenario(**base)


class TestZeroFaultIdentity:
    def test_empty_fault_list_is_bit_identical_to_nominal(self, evaluator):
        # The acceptance bar: all fault plumbing must be inert when no fault
        # fires — same events, same floats, same serialised report.
        s = scenario(slo_s=0.6)
        nominal = simulate(s, evaluator=evaluator)
        armed = simulate(s, evaluator=evaluator, faults=[])
        assert armed.as_dict() == nominal.as_dict()

    def test_zero_rate_fmea_degenerates_to_the_nominal_run(self, evaluator):
        s = scenario(slo_s=0.6)
        study = run_fmea(s, [ReplicaDeath(rate_per_hour=0.0)], evaluator=evaluator)
        nominal = simulate(s, evaluator=evaluator)
        assert study.nominal.as_dict() == nominal.as_dict()
        (row,) = study.rows
        assert row["samples"] == 0
        assert row["expected_slo_violation"] == 0.0
        assert row["d_p95_ms"] == 0.0
        assert study.samples == []
        assert study.expected_slo_violation == 0.0


class TestRunFmea:
    def test_default_slo_is_the_knee_convention(self, evaluator):
        s = scenario()  # no slo_s set
        study = run_fmea(s, [ReplicaDeath(rate_per_hour=60.0)], n_samples=1,
                         evaluator=evaluator)
        service = build_service_plan(s.design_point, evaluator=evaluator).total_seconds
        assert study.slo_s == pytest.approx(DEFAULT_SLO_FACTOR * service)

    def test_explicit_slo_wins(self, evaluator):
        study = run_fmea(scenario(slo_s=0.75), [ReplicaDeath(rate_per_hour=60.0)],
                         n_samples=1, evaluator=evaluator)
        assert study.slo_s == 0.75

    def test_rows_and_samples_accounting(self, evaluator):
        modes = [ReplicaDeath(rate_per_hour=60.0), ReplicaDeath(rate_per_hour=0.0)]
        study = run_fmea(scenario(), modes, n_samples=3, evaluator=evaluator)
        assert len(study.rows) == 2
        live, dead = study.rows
        assert live["samples"] == 3 and dead["samples"] == 0
        assert len(study.samples) == 3
        assert sum(s["weight"] for s in study.samples) == pytest.approx(1.0)
        assert live["expected_occurrences"] == pytest.approx(
            60.0 * study.nominal.horizon_s / 3600.0
        )
        # The headline column is occurrences x the (clamped) delta.
        assert live["expected_slo_violation"] == pytest.approx(
            live["expected_occurrences"] * max(0.0, live["d_violation_fraction"])
        )

    def test_replica_death_hurts_a_single_replica_fleet(self, evaluator):
        study = run_fmea(scenario(replicas=1), [ReplicaDeath(rate_per_hour=60.0)],
                         evaluator=evaluator)
        (row,) = study.rows
        assert row["d_violation_fraction"] > 0
        assert row["expected_slo_violation"] > 0

    def test_quadrature_sampling_runs(self, evaluator):
        study = run_fmea(scenario(), [ReplicaDeath(rate_per_hour=60.0)],
                         n_samples=2, method="quadrature", evaluator=evaluator)
        assert len(study.samples) == 2
        assert sum(s["weight"] for s in study.samples) == pytest.approx(1.0)

    def test_expected_violation_decreases_with_replicas(self, evaluator):
        # The acceptance criterion: at a load one replica can carry, adding
        # replicas monotonically shrinks the expected SLO damage of a
        # replica death, with a strict knee from one replica to two.
        rows = {}
        for replicas in (1, 2, 3):
            study = run_fmea(
                scenario(replicas=replicas),
                [ReplicaDeath(rate_per_hour=60.0)],
                evaluator=evaluator,
            )
            rows[replicas] = study.rows[0]["expected_slo_violation"]
        assert rows[1] > rows[2] >= rows[3]
        assert rows[1] > 0


class TestStudySerialisation:
    @pytest.fixture(scope="class")
    def study(self):
        return run_fmea(
            scenario(), default_fault_domain(), n_samples=1, evaluator=Evaluator()
        )

    def test_as_dict_is_json_serialisable(self, study):
        payload = json.loads(json.dumps(study.as_dict()))
        for key in ("scenario", "slo_s", "nominal", "fmea", "samples",
                    "expected_slo_violation"):
            assert key in payload
        assert len(payload["fmea"]) == len(default_fault_domain())
        kinds = {row["mode"] for row in payload["fmea"]}
        assert kinds == {"replica_death", "axi_degraded", "ps_core_loss",
                         "dma_corruption"}

    def test_csv_has_one_line_per_mode(self, study):
        lines = study.to_csv().splitlines()
        assert len(lines) == 1 + len(study.rows)
        assert lines[0].split(",")[0] == "mode"

    def test_render_mentions_the_headline(self, study):
        text = study.render()
        assert "FMEA:" in text
        assert "nominal:" in text
        assert "E[violation]" in text
        assert "total expected SLO-violation fraction" in text

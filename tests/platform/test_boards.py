"""Platform layer: board registry, catalog sanity, single-source clocks."""

from __future__ import annotations

import dataclasses

import pytest

from repro.platform import (
    BOARDS,
    BoardSpec,
    DEFAULT_BOARD,
    FpgaDevice,
    PYNQ_Z2,
    PowerProfile,
    ULTRA96_V2,
    ZCU104,
    ZYBO_Z7_20,
    ZYNQ_XC7Z020,
    get_board,
    list_boards,
    register_board,
)
from repro.fpga.axi import AxiTransferConfig
from repro.fpga.timing import TimingModel, TimingModelConfig
from repro.fpga.power import PowerModelConfig
from repro.hwsw.ps_model import PsModelConfig


class TestRegistry:
    def test_catalog_is_seeded(self):
        assert list_boards() == ("PYNQ-Z2", "Zybo-Z7-20", "Ultra96-V2", "ZCU104")
        assert len(BOARDS) >= 4

    def test_get_board_round_trip(self):
        for name in list_boards():
            assert get_board(name).name == name
            assert BOARDS[name] is get_board(name)

    def test_unknown_board_lists_registered_names(self):
        with pytest.raises(KeyError, match="registered boards: PYNQ-Z2"):
            get_board("DE10-Nano")

    def test_duplicate_registration_rejected_unless_replace(self):
        with pytest.raises(ValueError, match="already registered"):
            register_board(PYNQ_Z2)
        assert register_board(PYNQ_Z2, replace=True) is PYNQ_Z2
        assert get_board("PYNQ-Z2") is PYNQ_Z2

    def test_register_board_type_checked(self):
        with pytest.raises(TypeError):
            register_board("PYNQ-Z2")

    def test_custom_board_registers_and_unregisters(self):
        custom = dataclasses.replace(PYNQ_Z2, name="Custom-7020")
        register_board(custom)
        try:
            assert get_board("Custom-7020") is custom
            assert "Custom-7020" in BOARDS
        finally:
            from repro.platform.registry import _REGISTRY

            _REGISTRY.pop("Custom-7020")
        assert "Custom-7020" not in list_boards()


class TestCatalog:
    def test_reference_board_pins_the_paper_constants(self):
        # Table 1 of the paper — the values every calibrated default derives
        # from.  Changing any of these breaks the goldens; this test names
        # the blast radius explicitly.
        assert DEFAULT_BOARD is PYNQ_Z2
        assert PYNQ_Z2.ps_clock_hz == 650e6
        assert PYNQ_Z2.pl_clock_hz == 100e6
        assert PYNQ_Z2.ps_cores == 2
        assert PYNQ_Z2.dram_mb == 512
        assert PYNQ_Z2.fabric_delay_scale == 1.0
        assert PYNQ_Z2.fpga is ZYNQ_XC7Z020
        assert (ZYNQ_XC7Z020.bram36, ZYNQ_XC7Z020.dsp) == (140, 220)
        assert PYNQ_Z2.power == PowerProfile()

    @pytest.mark.parametrize("board", [PYNQ_Z2, ZYBO_Z7_20, ULTRA96_V2, ZCU104])
    def test_board_values_are_physical(self, board: BoardSpec):
        assert board.ps_clock_hz > 0 and board.pl_clock_hz > 0
        assert board.ps_cores >= 1 and board.dram_mb > 0
        assert 0 < board.fabric_delay_scale <= 1.0
        fpga = board.fpga
        assert fpga.bram36 > 0 and fpga.dsp > 0 and fpga.lut > 0 and fpga.ff > 0
        p = board.power
        assert p.ps_active_w > p.ps_idle_w > 0
        assert p.pl_static_w > 0 and p.pl_dynamic_base_w > 0

    @pytest.mark.parametrize("board", [PYNQ_Z2, ZYBO_Z7_20, ULTRA96_V2, ZCU104])
    def test_conv_x16_closes_timing_on_every_board(self, board: BoardSpec):
        # The paper's workhorse configuration must be feasible everywhere,
        # otherwise cross-board sweeps of the default scenario are vacuous.
        model = TimingModel.for_board(board)
        assert model.analyze(16).meets_timing

    def test_bigger_fabrics_strictly_dominate(self):
        small, large = ZYNQ_XC7Z020, ZCU104.fpga
        assert large.bram36 > small.bram36
        assert large.dsp > small.dsp
        assert large.lut > small.lut
        assert large.ff > small.ff


class TestSingleSourceOfTruth:
    """Satellite: every clock default derives from BoardSpec, nowhere else."""

    def test_axi_and_timing_share_the_board_pl_clock(self):
        assert AxiTransferConfig().clock_hz == PYNQ_Z2.pl_clock_hz
        assert TimingModelConfig().target_clock_hz == PYNQ_Z2.pl_clock_hz
        assert AxiTransferConfig().clock_hz == TimingModelConfig().target_clock_hz

    def test_ps_clock_default_derives_from_the_board(self):
        assert PsModelConfig().clock_hz == PYNQ_Z2.ps_clock_hz

    def test_power_defaults_derive_from_the_board_profile(self):
        assert PowerModelConfig() == PowerModelConfig.for_board(PYNQ_Z2)

    @pytest.mark.parametrize("board", [ZYBO_Z7_20, ULTRA96_V2, ZCU104])
    def test_for_board_rebinds_every_constant(self, board: BoardSpec):
        assert AxiTransferConfig.for_board(board).clock_hz == board.pl_clock_hz
        timing = TimingModelConfig.for_board(board)
        assert timing.target_clock_hz == board.pl_clock_hz
        assert timing.base_delay_ns == pytest.approx(5.0 * board.fabric_delay_scale)
        ps = PsModelConfig.for_board(board)
        assert ps.clock_hz == board.ps_clock_hz
        # Fixed overhead is CPU work: it shrinks as the PS clock grows.
        assert ps.per_image_overhead_s == pytest.approx(
            0.028 * PYNQ_Z2.ps_clock_hz / board.ps_clock_hz
        )
        assert PowerModelConfig.for_board(board).ps_active_w == board.power.ps_active_w

    def test_reference_board_configs_equal_the_calibrated_defaults(self):
        # Bit-for-bit: deriving from the reference board must not perturb a
        # single default (the goldens depend on it).
        assert PsModelConfig.for_board(PYNQ_Z2) == PsModelConfig()
        assert AxiTransferConfig.for_board(PYNQ_Z2) == AxiTransferConfig()
        assert TimingModelConfig.for_board(PYNQ_Z2) == TimingModelConfig()
        assert PowerModelConfig.for_board(PYNQ_Z2) == PowerModelConfig()

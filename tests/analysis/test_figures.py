"""Tests for the figure series generators."""

from __future__ import annotations

import pytest

from repro.analysis import figure5_series, figure6_series, merge_measured_accuracy
from repro.core import SUPPORTED_DEPTHS, VARIANT_NAMES


class TestFigure5:
    def test_all_variants_and_depths_covered(self):
        series = figure5_series()
        assert set(series) == set(VARIANT_NAMES)
        for values in series.values():
            assert set(values) == set(SUPPORTED_DEPTHS)

    def test_resnet56_size(self):
        """ResNet-56 is ~3.4 MB of 32-bit parameters."""

        series = figure5_series()
        assert series["ResNet"][56] == pytest.approx(3435.5, rel=0.01)

    def test_reduction_consistent_with_section_42(self):
        series = figure5_series()
        reduction = 100 * (1 - series["rODENet-3"][56] / series["ResNet"][56])
        assert reduction == pytest.approx(81.80, abs=0.05)


class TestFigure6:
    def test_all_variants_covered(self):
        series = figure6_series()
        assert set(series) == set(VARIANT_NAMES)
        for values in series.values():
            assert set(values) == set(SUPPORTED_DEPTHS)

    def test_paper_only_subset(self):
        paper = figure6_series(paper_only=True)
        assert paper["ResNet"][20] == pytest.approx(68.02)
        assert "rODENet-1" not in paper or len(paper.get("rODENet-1", {})) == 0

    def test_resnet_highest_at_small_depths(self):
        series = figure6_series()
        for depth in (20, 32):
            best = max(series[v][depth] for v in VARIANT_NAMES)
            assert series["ResNet"][depth] == best


class TestMergeMeasured:
    def test_merge_structure(self):
        measured = {"rODENet-3": {20: 55.0}}
        merged = merge_measured_accuracy(measured)
        entry = merged["rODENet-3"][20]
        assert entry["measured"] == 55.0
        assert entry["paper"] == pytest.approx(62.54)

    def test_merge_handles_variant_missing_from_paper(self):
        merged = merge_measured_accuracy({"CustomNet": {20: 10.0}})
        assert merged["CustomNet"][20]["paper"] is None
        assert merged["CustomNet"][20]["measured"] == 10.0

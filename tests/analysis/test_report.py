"""Tests for the plain-text table renderer."""

from __future__ import annotations

from repro.analysis import format_records, format_series, format_table


class TestFormatTable:
    def test_basic_layout(self):
        text = format_table(["a", "b"], [[1, 2.5], ["x", 3]])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert "---" in lines[1]
        assert len(lines) == 4

    def test_title(self):
        text = format_table(["col"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"
        assert set(text.splitlines()[1]) == {"="}

    def test_float_formatting(self):
        text = format_table(["v"], [[0.000123], [12345.6], [1.5], [0]])
        assert "0.000123" in text
        assert "1.23e+04" in text
        assert "1.5" in text

    def test_column_alignment(self):
        text = format_table(["name", "value"], [["a", 1], ["longer-name", 22]])
        lines = text.splitlines()
        # All rows have the same width for the first column.
        assert lines[2].index("1") == lines[3].index("22")


class TestFormatRecords:
    def test_uses_first_record_keys(self):
        text = format_records([{"x": 1, "y": 2}, {"x": 3, "y": 4}])
        assert text.splitlines()[0].split() == ["x", "y"]

    def test_empty_records(self):
        assert format_records([], title="Empty") == "Empty"
        assert format_records([]) == "(empty)"

    def test_missing_keys_render_blank(self):
        text = format_records([{"x": 1, "y": 2}, {"x": 3}])
        assert "3" in text


class TestFormatSeries:
    def test_series_layout(self):
        series = {"ResNet": {20: 1.0, 56: 3.0}, "ODENet": {20: 0.7, 56: 0.7}}
        text = format_series(series, x_label="N", title="Sizes")
        lines = text.splitlines()
        assert lines[0] == "Sizes"
        assert "20" in lines[2] and "56" in lines[2]
        assert any(line.startswith("ResNet") for line in lines)

    def test_missing_points_blank(self):
        series = {"A": {20: 1.0}, "B": {56: 2.0}}
        text = format_series(series)
        assert "A" in text and "B" in text

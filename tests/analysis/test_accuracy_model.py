"""Tests for the calibrated accuracy model (Section 4.3)."""

from __future__ import annotations

import pytest

from repro.analysis import PAPER_ACCURACY, accuracy_gap, accuracy_model, accuracy_table
from repro.core import SUPPORTED_DEPTHS, VARIANT_NAMES


class TestQuotedValues:
    @pytest.mark.parametrize(
        "variant,depth,expected",
        [
            ("ResNet", 20, 68.02),
            ("ResNet", 32, 70.16),
            ("ResNet", 44, 70.74),
            ("ResNet", 56, 69.09),
            ("rODENet-3", 20, 62.54),
            ("rODENet-3", 32, 64.46),
            ("Hybrid-3", 44, 68.58),
            ("Hybrid-3", 56, 68.11),
        ],
    )
    def test_paper_quoted_accuracies(self, variant, depth, expected):
        point = accuracy_model(variant, depth)
        assert point.accuracy_percent == pytest.approx(expected)
        assert point.source == "paper"

    def test_quoted_gaps(self):
        """Section 4.3: 5.48-point gap at N=20, 5.70 at N=32 for rODENet-3;
        2.16-point worst-case gap for Hybrid-3; 0.98 at N=56."""

        assert accuracy_gap("rODENet-3", 20) == pytest.approx(5.48, abs=0.01)
        assert accuracy_gap("rODENet-3", 32) == pytest.approx(5.70, abs=0.01)
        assert accuracy_gap("Hybrid-3", 44) == pytest.approx(2.16, abs=0.01)
        assert accuracy_gap("Hybrid-3", 56) == pytest.approx(0.98, abs=0.01)


class TestQualitativeClaims:
    def test_full_coverage(self):
        covered = {(p.variant, p.depth) for p in PAPER_ACCURACY}
        assert covered == {(v, d) for v in VARIANT_NAMES for d in SUPPORTED_DEPTHS}

    def test_estimated_points_flagged(self):
        assert accuracy_model("rODENet-1", 44).source == "estimated"

    def test_rodenet3_second_highest_at_small_depths(self):
        """"the accuracy is the second highest next to that of ResNet-N when N
        is 20 and 32"."""

        for depth in (20, 32):
            values = sorted(
                ((accuracy_model(v, depth).accuracy_percent, v) for v in VARIANT_NAMES), reverse=True
            )
            assert values[0][1] == "ResNet"
            assert values[1][1] == "rODENet-3"

    def test_rodenet3_stable_everywhere(self):
        assert all(accuracy_model("rODENet-3", d).stable for d in SUPPORTED_DEPTHS)

    def test_odenet_unstable_at_small_depths(self):
        assert not accuracy_model("ODENet", 20).stable
        assert accuracy_model("ODENet", 56).stable

    def test_rodenet1_and_12_remain_unstable_at_56(self):
        assert not accuracy_model("rODENet-1", 56).stable
        assert not accuracy_model("rODENet-1+2", 56).stable

    def test_hybrid3_tracks_resnet_at_large_depths(self):
        for depth in (44, 56):
            gap = accuracy_gap("Hybrid-3", depth)
            assert gap <= 2.2

    def test_hybrid3_more_robust_to_depth_than_resnet(self):
        """ResNet drops 1.65 points from 44 to 56; Hybrid-3 only 0.47."""

        resnet_drop = accuracy_model("ResNet", 44).accuracy_percent - accuracy_model("ResNet", 56).accuracy_percent
        hybrid_drop = accuracy_model("Hybrid-3", 44).accuracy_percent - accuracy_model("Hybrid-3", 56).accuracy_percent
        assert resnet_drop == pytest.approx(1.65, abs=0.01)
        assert hybrid_drop == pytest.approx(0.47, abs=0.01)
        assert hybrid_drop < resnet_drop

    def test_unknown_configuration_raises(self):
        with pytest.raises(KeyError):
            accuracy_model("ResNet", 110)

    def test_accuracy_table_is_flat_dicts(self):
        table = accuracy_table()
        assert len(table) == len(PAPER_ACCURACY)
        assert {"variant", "N", "accuracy_percent", "stable", "source"} <= set(table[0])

"""Tests for the table record generators."""

from __future__ import annotations

import pytest

from repro.analysis import (
    table1_records,
    table2_records,
    table3_records,
    table4_records,
    table5_records,
)


class TestTable1:
    def test_board_specification(self):
        records = {r["item"]: r["value"] for r in table1_records()}
        assert "650MHz" in records["CPU"]
        assert "512MB" in records["DRAM"]
        assert "XC7Z020" in records["FPGA"]


class TestTable2:
    def test_seven_rows(self):
        records = table2_records()
        assert len(records) == 7
        assert records[0]["layer"] == "conv1"

    def test_values_match_paper(self):
        by_layer = {r["layer"]: r for r in table2_records()}
        assert by_layer["layer3_2"]["parameter_kB"] == pytest.approx(300.54, abs=0.01)
        assert by_layer["layer1"]["parameter_kB"] == pytest.approx(19.84, abs=0.01)


class TestTable3:
    def test_twelve_rows_with_estimates(self):
        records = table3_records(include_estimates=True)
        assert len(records) == 12
        assert all("model_lut" in r for r in records)

    def test_layer3_2_conv16_row(self):
        row = next(
            r for r in table3_records() if r["layer"] == "layer3_2" and r["parallelism"] == "conv_16"
        )
        assert row["bram_pct"] == pytest.approx(100.0)
        assert row["dsp"] == 68
        assert row["lut"] == 12720

    def test_without_estimates(self):
        records = table3_records(include_estimates=False)
        assert all("model_lut" not in r for r in records)


class TestTable4:
    def test_layers_and_variants_present(self):
        records = table4_records(depth=56)
        assert len(records) == 7
        row = next(r for r in records if r["layer"] == "layer3_2")
        assert row["rODENet-3"] == "1 / 24"
        assert row["ResNet"] == "8 / 1"
        assert row["rODENet-1"] == "0 / 0"


class TestTable5:
    def test_row_count(self):
        records = table5_records(depths=(20, 56))
        assert len(records) == 7 * 2

    def test_headline_row(self):
        records = table5_records(depths=(56,), models=("rODENet-3",))
        row = records[0]
        assert row["model"] == "rODENet-3"
        assert row["overall_speedup"] == pytest.approx(2.66, abs=0.05)
        assert row["offload_target"] == "layer3_2"

    def test_resnet_row_has_no_target(self):
        records = table5_records(depths=(20,), models=("ResNet",))
        assert records[0]["target_wo_pl_s"] == "-"
        assert records[0]["overall_speedup"] == 1.0

    def test_custom_parallelism(self):
        fast = table5_records(depths=(56,), models=("rODENet-3",), n_units=16)[0]
        slow = table5_records(depths=(56,), models=("rODENet-3",), n_units=1)[0]
        assert slow["overall_speedup"] < fast["overall_speedup"]

"""Shared fixtures for the test-suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import make_synthetic_cifar, train_test_split


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator for each test."""

    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def tiny_dataset():
    """A small 4-class synthetic dataset (shared across the session)."""

    return make_synthetic_cifar(
        num_samples=64, num_classes=4, image_size=16, channels=3, difficulty=0.3, seed=7
    )


@pytest.fixture(scope="session")
def tiny_split(tiny_dataset):
    """Train/test split of the tiny dataset."""

    return train_test_split(tiny_dataset, test_fraction=0.25, seed=3)


def numeric_gradient(fn, array: np.ndarray, indices, eps: float = 1e-6):
    """Central-difference numeric gradient of ``fn()`` w.r.t. array[indices]."""

    grads = []
    for idx in indices:
        original = array[idx]
        array[idx] = original + eps
        f_plus = fn()
        array[idx] = original - eps
        f_minus = fn()
        array[idx] = original
        grads.append((f_plus - f_minus) / (2.0 * eps))
    return np.asarray(grads)


@pytest.fixture
def gradcheck():
    """Expose the numeric-gradient helper as a fixture."""

    return numeric_gradient

"""Tests for the static network description (Table 2 geometry)."""

from __future__ import annotations

import pytest

from repro.core import LAYER_ORDER, NETWORK_LAYERS, OFFLOADABLE_LAYER_NAMES, layer_geometry
from repro.fpga import LAYER1, LAYER2_2, LAYER3_2


class TestLayerInventory:
    def test_layer_order(self):
        assert LAYER_ORDER == ("conv1", "layer1", "layer2_1", "layer2_2", "layer3_1", "layer3_2", "fc")

    def test_offloadable_names(self):
        assert OFFLOADABLE_LAYER_NAMES == ("layer1", "layer2_2", "layer3_2")

    def test_output_sizes_match_table2(self):
        assert (NETWORK_LAYERS["conv1"].out_channels, NETWORK_LAYERS["conv1"].out_height) == (16, 32)
        assert (NETWORK_LAYERS["layer1"].out_channels, NETWORK_LAYERS["layer1"].out_height) == (16, 32)
        assert (NETWORK_LAYERS["layer2_1"].out_channels, NETWORK_LAYERS["layer2_1"].out_height) == (32, 16)
        assert (NETWORK_LAYERS["layer2_2"].out_channels, NETWORK_LAYERS["layer2_2"].out_height) == (32, 16)
        assert (NETWORK_LAYERS["layer3_1"].out_channels, NETWORK_LAYERS["layer3_1"].out_height) == (64, 8)
        assert (NETWORK_LAYERS["layer3_2"].out_channels, NETWORK_LAYERS["layer3_2"].out_height) == (64, 8)
        assert NETWORK_LAYERS["fc"].out_channels == 100

    def test_strides(self):
        assert NETWORK_LAYERS["layer2_1"].stride == 2
        assert NETWORK_LAYERS["layer3_1"].stride == 2
        assert NETWORK_LAYERS["layer1"].stride == 1

    def test_unknown_layer(self):
        with pytest.raises(KeyError):
            layer_geometry("layer4")


class TestParameterCounts:
    """Per-layer parameter sizes must match Table 2 exactly."""

    @pytest.mark.parametrize(
        "layer,as_ode,expected_kb",
        [
            ("conv1", False, 1.856),
            ("layer1", True, 19.84),
            ("layer2_1", False, 55.808),
            ("layer2_2", True, 76.544),
            ("layer3_1", False, 222.208),
            ("layer3_2", True, 300.544),
            ("fc", False, 26.0),
        ],
    )
    def test_table2_kilobytes(self, layer, as_ode, expected_kb):
        geometry = layer_geometry(layer)
        assert geometry.parameter_kilobytes(as_odeblock=as_ode) == pytest.approx(expected_kb, abs=0.005)

    def test_odeblock_adds_one_input_channel_per_conv(self):
        plain = layer_geometry("layer3_2").parameter_count(as_odeblock=False)
        ode = layer_geometry("layer3_2").parameter_count(as_odeblock=True)
        assert ode - plain == 2 * 64 * 9  # one extra input channel on both 3x3 convs

    def test_plain_block_parameter_formula(self):
        geom = layer_geometry("layer1")
        assert geom.parameter_count() == 2 * 16 * 16 * 9 + 4 * 16

    def test_fc_parameters(self):
        assert layer_geometry("fc").parameter_count() == 64 * 100 + 100


class TestWorkProfile:
    def test_all_repeated_blocks_have_equal_macs(self):
        macs = {layer_geometry(l).macs for l in ("layer1", "layer2_2", "layer3_2")}
        assert len(macs) == 1

    def test_downsample_blocks_cheaper_than_repeated_blocks(self):
        assert layer_geometry("layer2_1").macs < layer_geometry("layer2_2").macs
        assert layer_geometry("layer3_1").macs < layer_geometry("layer3_2").macs

    def test_conv1_macs(self):
        assert layer_geometry("conv1").macs == 16 * 3 * 9 * 32 * 32

    def test_fc_macs(self):
        assert layer_geometry("fc").macs == 6400

    def test_elementwise_passes(self):
        assert layer_geometry("layer1").elementwise_passes == 4
        assert layer_geometry("conv1").elementwise_passes == 2
        assert layer_geometry("fc").elementwise_passes == 1

    def test_fpga_geometry_mapping(self):
        assert layer_geometry("layer1").fpga_geometry() is LAYER1
        assert layer_geometry("layer2_2").fpga_geometry() is LAYER2_2
        assert layer_geometry("layer3_2").fpga_geometry() is LAYER3_2

    def test_non_offloadable_layers_have_no_fpga_geometry(self):
        for layer in ("conv1", "layer2_1", "layer3_1", "fc"):
            with pytest.raises(ValueError):
                layer_geometry(layer).fpga_geometry()

"""Tests for the offload planner (Section 3.2 feasibility reasoning)."""

from __future__ import annotations

import pytest

from repro.core import OffloadPlanner
from repro.fpga import ZYNQ_XC7Z020


@pytest.fixture(scope="module")
def planner():
    return OffloadPlanner()


class TestTargetSelection:
    def test_paper_pairings(self, planner):
        assert planner.proposed_targets("rODENet-1", 56) == ("layer1",)
        assert planner.proposed_targets("rODENet-2", 56) == ("layer2_2",)
        assert planner.proposed_targets("rODENet-1+2", 56) == ("layer1", "layer2_2")
        assert planner.proposed_targets("rODENet-3", 56) == ("layer3_2",)
        assert planner.proposed_targets("ODENet-3", 56) == ("layer3_2",)
        assert planner.proposed_targets("Hybrid-3", 56) == ("layer3_2",)
        assert planner.proposed_targets("ResNet", 56) == ()

    def test_fallback_for_unlisted_variant_uses_heavy_layers(self, planner):
        # "ODENet" (not the Table-5 row name "ODENet-3") falls back to the
        # heavily-used ODEBlock layers.
        targets = planner.proposed_targets("ODENet", 56)
        assert set(targets) == {"layer1", "layer2_2", "layer3_2"}


class TestFeasibility:
    def test_section32_cases(self, planner):
        """All four Section-3.2 offload cases fit the XC7Z020."""

        matrix = planner.feasibility_matrix(n_units=16)
        assert matrix == {
            "layer1": True,
            "layer2_2": True,
            "layer1+layer2_2": True,
            "layer3_2": True,
        }

    def test_plan_rodenet3(self, planner):
        decision = planner.plan("rODENet-3", 56)
        assert decision.feasible
        assert decision.targets == ("layer3_2",)
        assert decision.expected_speedup == pytest.approx(2.66, abs=0.1)
        assert decision.resources.fits(ZYNQ_XC7Z020)

    def test_plan_resnet_trivially_feasible(self, planner):
        decision = planner.plan("ResNet", 20)
        assert decision.feasible
        assert decision.targets == ()
        assert decision.expected_speedup == 1.0

    def test_conv_x32_plan_fails_timing(self, planner):
        decision = planner.plan("rODENet-3", 56, n_units=32)
        assert not decision.meets_timing
        assert not decision.feasible

    def test_max_feasible_parallelism_is_16(self, planner):
        assert planner.max_feasible_parallelism(("layer3_2",)) == 16
        assert planner.max_feasible_parallelism(("layer1",)) == 16

    def test_layer1_parallelism_capped_by_channels(self, planner):
        # layer1 has 16 output channels, so 32/64 units are never considered.
        assert planner.max_feasible_parallelism(("layer1",), candidates=(16, 32, 64)) == 16

    def test_as_dict(self, planner):
        d = planner.plan("rODENet-2", 44).as_dict()
        assert {"model", "N", "targets", "n_units", "resources", "expected_speedup"} <= set(d)

    def test_resources_for_combined_targets_add_up(self, planner):
        single1 = planner.resources_for_targets(("layer1",))
        single2 = planner.resources_for_targets(("layer2_2",))
        combo = planner.resources_for_targets(("layer1", "layer2_2"))
        assert combo.dsp == single1.dsp + single2.dsp
        assert combo.bram == single1.bram + single2.bram

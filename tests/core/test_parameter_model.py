"""Tests for the parameter-size model (Table 2, Figure 5, Section 4.2)."""

from __future__ import annotations

import pytest

from repro.core import (
    SUPPORTED_DEPTHS,
    VARIANT_NAMES,
    parameter_reduction_percent,
    parameter_size_series,
    table2_structure,
    variant_parameter_bytes,
    variant_parameter_count,
    variant_spec,
)


class TestTable2:
    def test_row_count_and_order(self):
        rows = table2_structure()
        assert [r.layer for r in rows] == [
            "conv1", "layer1", "layer2_1", "layer2_2", "layer3_1", "layer3_2", "fc",
        ]

    @pytest.mark.parametrize(
        "layer,expected_kb",
        [
            ("conv1", 1.86),
            ("layer1", 19.84),
            ("layer2_1", 55.81),
            ("layer2_2", 76.54),
            ("layer3_1", 222.21),
            ("layer3_2", 300.54),
            ("fc", 26.00),
        ],
    )
    def test_parameter_kilobytes_match_paper(self, layer, expected_kb):
        rows = {r.layer: r for r in table2_structure()}
        assert rows[layer].parameter_kilobytes == pytest.approx(expected_kb, abs=0.01)

    def test_executions_column(self):
        rows = {r.layer: r for r in table2_structure()}
        assert rows["layer1"].executions_per_block == "(N-2)/6"
        assert rows["layer3_2"].executions_per_block == "(N-8)/6"
        assert rows["fc"].executions_per_block == "1"


class TestSection42Reductions:
    """The six reduction percentages quoted in Section 4.2."""

    @pytest.mark.parametrize(
        "variant,depth,expected",
        [
            ("ODENet", 20, 36.24),
            ("rODENet-3", 20, 43.29),
            ("ODENet", 56, 79.54),
            ("rODENet-3", 56, 81.80),
            ("Hybrid-3", 20, 26.43),
            ("Hybrid-3", 56, 60.16),
        ],
    )
    def test_reduction_percentages(self, variant, depth, expected):
        assert parameter_reduction_percent(variant, depth) == pytest.approx(expected, abs=0.01)


class TestFigure5Shape:
    def test_resnet_and_hybrid_grow_with_depth(self):
        series = parameter_size_series()
        for variant in ("ResNet", "Hybrid-3"):
            values = [series[variant][d] for d in SUPPORTED_DEPTHS]
            assert all(a < b for a, b in zip(values, values[1:])), variant

    def test_ode_variants_independent_of_depth(self):
        """"parameter sizes of ODENet-N and the rODENet variants are independent of N"."""

        series = parameter_size_series()
        for variant in ("ODENet", "rODENet-1", "rODENet-2", "rODENet-1+2", "rODENet-3"):
            values = {series[variant][d] for d in SUPPORTED_DEPTHS}
            assert len(values) == 1, variant

    def test_resnet_always_largest(self):
        series = parameter_size_series()
        for depth in SUPPORTED_DEPTHS:
            resnet = series["ResNet"][depth]
            for variant in VARIANT_NAMES:
                assert series[variant][depth] <= resnet

    def test_rodenet1_smallest(self):
        """rODENet-1 keeps only the cheap 16-channel ODEBlock."""

        series = parameter_size_series()
        for depth in SUPPORTED_DEPTHS:
            smallest = min(series[v][depth] for v in VARIANT_NAMES)
            assert series["rODENet-1"][depth] == smallest

    def test_ordering_of_rodenet_variants(self):
        series = parameter_size_series()
        at56 = {v: series[v][56] for v in VARIANT_NAMES}
        assert at56["rODENet-1"] < at56["rODENet-2"] < at56["rODENet-3"] < at56["ODENet"]

    def test_resnet_parameter_count_formula(self):
        """ResNet-20 total parameters computed independently."""

        expected = (
            (16 * 3 * 9 + 32)                    # conv1 + BN
            + 3 * (2 * 16 * 16 * 9 + 64)          # layer1: 3 plain blocks
            + (32 * 16 * 9 + 32 * 32 * 9 + 128)   # layer2_1
            + 2 * (2 * 32 * 32 * 9 + 128)          # layer2_2
            + (64 * 32 * 9 + 64 * 64 * 9 + 256)   # layer3_1
            + 2 * (2 * 64 * 64 * 9 + 256)          # layer3_2
            + (64 * 100 + 100)                     # fc
        )
        assert variant_parameter_count("ResNet", 20) == expected

    def test_bytes_are_4x_count(self):
        assert variant_parameter_bytes("ODENet", 32) == 4 * variant_parameter_count("ODENet", 32)

    def test_accepts_spec_object(self):
        spec = variant_spec("rODENet-3", 44)
        assert variant_parameter_count(spec) == variant_parameter_count("rODENet-3", 44)

    def test_removed_layers_contribute_nothing(self):
        with_layer = variant_parameter_count("rODENet-2", 20)
        without = variant_parameter_count("rODENet-1", 20)
        # rODENet-1 removes layer2_2 entirely, so it must be smaller than
        # rODENet-2 which keeps an ODEBlock there.
        assert without < with_layer

"""Tests for PlainBlock, ODEBlockFunction and ODEBlock."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.odeblock import ODEBlock, ODEBlockFunction, PlainBlock
from repro.nn import CrossEntropyLoss, Tensor
from repro.nn import functional as F


class TestPlainBlock:
    def test_identity_shape(self, rng):
        block = PlainBlock(8, 8, rng=rng)
        x = Tensor(rng.normal(size=(2, 8, 6, 6)))
        assert block(x).shape == (2, 8, 6, 6)

    def test_strided_channel_doubling(self, rng):
        block = PlainBlock(8, 16, stride=2, rng=rng)
        x = Tensor(rng.normal(size=(2, 8, 8, 8)))
        out = block(x)
        assert out.shape == (2, 16, 4, 4)

    def test_output_nonnegative_after_relu(self, rng):
        block = PlainBlock(4, 4, rng=rng)
        out = block(Tensor(rng.normal(size=(1, 4, 4, 4))))
        assert np.all(out.data >= 0)

    def test_shortcut_dominates_with_zero_weights(self, rng):
        """With zero conv weights the block reduces to relu(shortcut)."""

        block = PlainBlock(4, 4, rng=rng)
        block.conv1.weight.data[...] = 0.0
        block.conv2.weight.data[...] = 0.0
        block.eval()
        x = Tensor(rng.normal(size=(1, 4, 3, 3)))
        out = block(x)
        np.testing.assert_allclose(out.data, np.maximum(x.data, 0), atol=1e-10)

    def test_parameter_count_matches_table2_formula(self, rng):
        block = PlainBlock(64, 64, rng=rng)
        assert block.num_parameters() == 2 * 64 * 64 * 9 + 4 * 64

    def test_strided_parameter_count_has_no_projection(self, rng):
        block = PlainBlock(32, 64, stride=2, rng=rng)
        assert block.num_parameters() == 64 * 32 * 9 + 64 * 64 * 9 + 4 * 64

    def test_gradients_flow(self, rng):
        block = PlainBlock(4, 4, rng=rng)
        x = Tensor(rng.normal(size=(2, 4, 4, 4)), requires_grad=True)
        block(x).sum().backward()
        assert x.grad is not None
        assert block.conv1.weight.grad is not None


class TestODEBlockFunction:
    def test_time_concat_parameter_count(self, rng):
        func = ODEBlockFunction(64, rng=rng)
        assert func.num_parameters() == 2 * 64 * 65 * 9 + 4 * 64

    def test_output_shape_preserved(self, rng):
        func = ODEBlockFunction(8, rng=rng)
        z = Tensor(rng.normal(size=(2, 8, 5, 5)))
        assert func(z, 0.3).shape == (2, 8, 5, 5)

    def test_time_value_changes_output(self, rng):
        func = ODEBlockFunction(4, rng=rng)
        func.eval()
        z = Tensor(rng.normal(size=(1, 4, 4, 4)))
        out0 = func(z, 0.0).data
        out1 = func(z, 1.0).data
        assert np.max(np.abs(out0 - out1)) > 1e-8


class TestODEBlock:
    def test_invalid_steps(self, rng):
        with pytest.raises(ValueError):
            ODEBlock(4, num_steps=0, rng=rng)

    def test_forward_shape(self, rng):
        block = ODEBlock(8, num_steps=3, rng=rng)
        out = block(Tensor(rng.normal(size=(2, 8, 4, 4))))
        assert out.shape == (2, 8, 4, 4)

    def test_euler_executions_per_forward(self, rng):
        assert ODEBlock(4, num_steps=5, rng=rng).executions_per_forward == 5
        assert ODEBlock(4, num_steps=5, method="rk4", rng=rng).executions_per_forward == 20

    def test_euler_equals_manual_unroll(self, rng):
        """The ODEBlock with Euler/h=1 equals M manual residual executions."""

        block = ODEBlock(4, num_steps=3, method="euler", rng=rng)
        block.eval()
        x = Tensor(rng.normal(scale=0.3, size=(1, 4, 4, 4)))
        out = block(x).data

        z = x
        for i in range(3):
            z = z + block.dynamics(z, float(i))
        expected = z.relu().data
        np.testing.assert_allclose(out, expected, rtol=1e-10)

    def test_parameter_count_independent_of_steps(self, rng):
        p3 = ODEBlock(8, num_steps=3, rng=rng).num_parameters()
        p9 = ODEBlock(8, num_steps=9, rng=rng).num_parameters()
        assert p3 == p9

    def test_gradient_through_unrolled_solver(self, rng):
        block = ODEBlock(4, num_steps=2, rng=rng)
        x = Tensor(rng.normal(scale=0.3, size=(2, 4, 4, 4)))
        pooled = F.global_avg_pool2d(block(x))
        loss = (pooled * pooled).sum()
        loss.backward()
        assert block.dynamics.conv1.weight.grad is not None
        assert np.any(block.dynamics.conv1.weight.grad != 0)

    def test_adjoint_training_path(self, rng):
        """With a fine solver grid, adjoint gradients track unrolled backprop.

        At the paper's coarse Euler grid (h = 1) the adjoint gradients are
        known to drift from the unrolled ones (the ANODE observation cited in
        Section 4.3); with a fine RK4 grid over [0, 1] both must agree.
        """

        block = ODEBlock(4, num_steps=8, method="rk4", integration_time=1.0, rng=rng)
        x_data = rng.normal(scale=0.3, size=(1, 4, 3, 3))

        def run(use_adjoint):
            block.use_adjoint = use_adjoint
            block.train()
            block.zero_grad()
            out = block(Tensor(x_data))
            out.sum().backward()
            return block.dynamics.conv1.weight.grad.copy()

        grad_unrolled = run(False)
        grad_adjoint = run(True)
        cosine = np.sum(grad_unrolled * grad_adjoint) / (
            np.linalg.norm(grad_unrolled) * np.linalg.norm(grad_adjoint)
        )
        assert cosine > 0.99

    def test_adjoint_coarse_grid_gradients_drift(self, rng):
        """At the paper's h = 1 Euler grid the adjoint gradient deviates —
        the accuracy-loss issue the paper's future work mentions."""

        block = ODEBlock(4, num_steps=2, method="euler", rng=rng)
        x_data = rng.normal(scale=0.3, size=(1, 4, 3, 3))

        def run(use_adjoint):
            block.use_adjoint = use_adjoint
            block.train()
            block.zero_grad()
            block(Tensor(x_data)).sum().backward()
            return block.dynamics.conv1.weight.grad.copy()

        grad_unrolled = run(False)
        grad_adjoint = run(True)
        relative_gap = np.linalg.norm(grad_unrolled - grad_adjoint) / np.linalg.norm(grad_unrolled)
        assert relative_gap > 0.01

    def test_rk4_differs_from_euler(self, rng):
        euler = ODEBlock(4, num_steps=2, method="euler", rng=rng)
        rk4 = ODEBlock(4, num_steps=2, method="rk4", rng=rng)
        rk4.load_state_dict(euler.state_dict())
        euler.eval(), rk4.eval()
        x = Tensor(rng.normal(scale=0.3, size=(1, 4, 4, 4)))
        assert np.max(np.abs(euler(x).data - rk4(x).data)) > 1e-9

"""Tests for the Table-4 variant specifications."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    SUPPORTED_DEPTHS,
    VARIANT_NAMES,
    BlockRealization,
    all_variant_specs,
    table4_rows,
    variant_spec,
)


class TestTable4Structure:
    """Spot checks of the stacked-blocks / executions-per-block formulae."""

    def test_resnet_56(self):
        spec = variant_spec("ResNet", 56)
        assert spec.plan("layer1").stacked_blocks == 9
        assert spec.plan("layer2_2").stacked_blocks == 8
        assert spec.plan("layer3_2").stacked_blocks == 8
        assert all(p.executions_per_block == 1 for p in spec)

    def test_odenet_56(self):
        spec = variant_spec("ODENet", 56)
        assert spec.plan("layer1").as_table_cell() == "1 / 9"
        assert spec.plan("layer2_2").as_table_cell() == "1 / 8"
        assert spec.plan("layer3_2").as_table_cell() == "1 / 8"

    def test_rodenet1_executions(self):
        # layer1 executed (N-6)/2 times; layer2_2 / layer3_2 removed.
        spec = variant_spec("rODENet-1", 20)
        assert spec.plan("layer1").as_table_cell() == "1 / 7"
        assert spec.plan("layer2_2").as_table_cell() == "0 / 0"
        assert spec.plan("layer3_2").as_table_cell() == "0 / 0"

    def test_rodenet2_executions(self):
        spec = variant_spec("rODENet-2", 32)
        assert spec.plan("layer1").as_table_cell() == "1 / 1"
        assert spec.plan("layer2_2").as_table_cell() == "1 / 12"
        assert spec.plan("layer3_2").as_table_cell() == "0 / 0"

    def test_rodenet12_executions(self):
        spec = variant_spec("rODENet-1+2", 44)
        assert spec.plan("layer1").as_table_cell() == "1 / 10"
        assert spec.plan("layer2_2").as_table_cell() == "1 / 9"

    def test_rodenet3_executions(self):
        spec = variant_spec("rODENet-3", 56)
        assert spec.plan("layer1").as_table_cell() == "1 / 1"
        assert spec.plan("layer2_2").as_table_cell() == "0 / 0"
        assert spec.plan("layer3_2").as_table_cell() == "1 / 24"

    def test_hybrid3(self):
        spec = variant_spec("Hybrid-3", 56)
        assert spec.plan("layer1").as_table_cell() == "9 / 1"
        assert spec.plan("layer2_2").as_table_cell() == "8 / 1"
        assert spec.plan("layer3_2").as_table_cell() == "1 / 8"

    def test_fixed_layers_always_once(self):
        for name in VARIANT_NAMES:
            spec = variant_spec(name, 44)
            for layer in ("conv1", "layer2_1", "layer3_1", "fc"):
                assert spec.plan(layer).as_table_cell() == "1 / 1"


class TestExecutionBudget:
    """The rODENet variants keep ResNet-N's total building-block executions."""

    @pytest.mark.parametrize("depth", SUPPORTED_DEPTHS)
    def test_total_executions_match_resnet(self, depth):
        baseline = variant_spec("ResNet", depth).total_block_executions
        for name in VARIANT_NAMES:
            assert variant_spec(name, depth).total_block_executions == baseline, name

    @pytest.mark.parametrize("depth", SUPPORTED_DEPTHS)
    def test_execution_counts_are_integers_and_positive(self, depth):
        for name in VARIANT_NAMES:
            for plan in variant_spec(name, depth):
                assert plan.stacked_blocks >= 0
                assert plan.executions_per_block >= 0
                if plan.realization != BlockRealization.REMOVED:
                    assert plan.total_executions >= 1


class TestRealizations:
    def test_ode_layers(self):
        assert variant_spec("ODENet", 20).ode_layers == ["layer1", "layer2_2", "layer3_2"]
        assert variant_spec("rODENet-3", 20).ode_layers == ["layer3_2"]
        assert variant_spec("ResNet", 20).ode_layers == []

    def test_removed_layers(self):
        assert variant_spec("rODENet-1", 20).removed_layers == ["layer2_2", "layer3_2"]
        assert variant_spec("rODENet-3", 20).removed_layers == ["layer2_2"]
        assert variant_spec("Hybrid-3", 20).removed_layers == []

    def test_heavily_used_layers(self):
        assert variant_spec("rODENet-3", 56).heavily_used_layers() == ["layer3_2"]
        assert variant_spec("rODENet-1+2", 56).heavily_used_layers() == ["layer1", "layer2_2"]
        assert variant_spec("ResNet", 56).heavily_used_layers() == []

    def test_time_concat_only_on_odeblocks(self):
        spec = variant_spec("rODENet-3", 20)
        assert spec.plan("layer3_2").uses_time_concat
        assert not spec.plan("layer1").uses_time_concat


class TestValidationAndHelpers:
    def test_unknown_variant(self):
        with pytest.raises(ValueError, match="unknown variant"):
            variant_spec("DenseNet", 20)

    def test_case_insensitive_lookup(self):
        assert variant_spec("resnet", 20).name == "ResNet"
        assert variant_spec("rodenet-1+2", 20).name == "rODENet-1+2"

    def test_invalid_depth(self):
        with pytest.raises(ValueError):
            variant_spec("ResNet", 21)
        with pytest.raises(ValueError):
            variant_spec("ResNet", 14)

    def test_full_name_and_plan_lookup(self):
        spec = variant_spec("ODENet", 32)
        assert spec.full_name == "ODENet-32"
        with pytest.raises(KeyError):
            spec.plan("layer7")

    def test_all_variant_specs_cover_grid(self):
        specs = all_variant_specs()
        assert len(specs) == len(VARIANT_NAMES) * len(SUPPORTED_DEPTHS)
        assert "rODENet-3-56" in specs

    def test_table4_rows_shape(self):
        rows = table4_rows(56)
        assert set(rows) == {"conv1", "layer1", "layer2_1", "layer2_2", "layer3_1", "layer3_2", "fc"}
        assert rows["layer3_2"]["rODENet-3"] == "1 / 24"
        assert rows["layer1"]["ResNet"] == "9 / 1"

    @given(st.sampled_from(VARIANT_NAMES), st.sampled_from([20, 32, 44, 56, 68, 80]))
    @settings(max_examples=40, deadline=None)
    def test_arbitrary_valid_depths(self, name, depth):
        spec = variant_spec(name, depth)
        assert spec.total_block_executions == variant_spec("ResNet", depth).total_block_executions

    def test_incompatible_depth_for_rodenet12_rejected(self):
        # 26 satisfies (N-2) % 6 == 0 but not the N % 4 == 0 requirement of
        # rODENet-1+2's execution split.
        with pytest.raises(ValueError, match="incompatible"):
            variant_spec("rODENet-1+2", 26)

"""Tests for the execution-time model (Table 5)."""

from __future__ import annotations

import pytest

from repro.core import (
    PAPER_OFFLOAD_TARGETS,
    TABLE5_MODELS,
    ExecutionTimeModel,
    variant_spec,
)


#: Published Table 5 values used as calibration anchors:
#: (model, N) -> (total w/o PL, target w/o PL, target w/ PL, overall speedup).
PAPER_TABLE5 = {
    ("ResNet", 20): (0.54, None, None, None),
    ("ResNet", 32): (0.89, None, None, None),
    ("ResNet", 44): (1.24, None, None, None),
    ("ResNet", 56): (1.58, None, None, None),
    ("rODENet-1", 20): (0.57, 0.44, 0.15, 1.99),
    ("rODENet-1", 56): (1.67, 1.54, 0.55, 2.45),
    ("rODENet-2", 20): (0.52, 0.33, 0.11, 1.75),
    ("rODENet-2", 56): (1.52, 1.33, 0.44, 2.40),
    ("rODENet-3", 20): (0.54, 0.35, 0.10, 1.85),
    ("rODENet-3", 32): (0.88, 0.69, 0.20, 2.26),
    ("rODENet-3", 44): (1.23, 1.04, 0.30, 2.50),
    ("rODENet-3", 56): (1.57, 1.38, 0.40, 2.66),
    ("ODENet-3", 56): (1.60, 0.46, 0.13, 1.26),
    ("Hybrid-3", 20): (0.53, 0.12, 0.03, 1.19),
    ("Hybrid-3", 56): (1.56, 0.46, 0.13, 1.27),
}


@pytest.fixture(scope="module")
def model():
    return ExecutionTimeModel()


class TestAgainstPaperTable5:
    @pytest.mark.parametrize("key", sorted(PAPER_TABLE5, key=str))
    def test_total_without_pl(self, model, key):
        name, depth = key
        expected = PAPER_TABLE5[key][0]
        report = model.report(name, depth)
        assert report.total_without_pl == pytest.approx(expected, rel=0.08)

    @pytest.mark.parametrize(
        "key", [k for k, v in PAPER_TABLE5.items() if v[1] is not None]
    )
    def test_target_times_and_speedups(self, model, key):
        name, depth = key
        _, target_sw, target_pl, speedup = PAPER_TABLE5[key]
        report = model.report(name, depth)
        assert sum(report.target_without_pl) == pytest.approx(target_sw, rel=0.10)
        assert sum(report.target_with_pl) == pytest.approx(target_pl, rel=0.12, abs=0.006)
        assert report.overall_speedup == pytest.approx(speedup, rel=0.08)

    def test_headline_speedup_266(self, model):
        """The abstract's headline: rODENet-3-56 is 2.66x faster with the PL."""

        report = model.report("rODENet-3", 56)
        assert report.overall_speedup == pytest.approx(2.66, abs=0.05)

    def test_speedup_vs_resnet_baseline(self, model):
        """Section 4.4: 2.67x faster than a software execution of ResNet-56."""

        assert model.speedup_vs_resnet("rODENet-3", 56) == pytest.approx(2.67, rel=0.05)

    def test_ratio_of_target_ranges(self, model):
        """rODENet-3 target share 64–88 %; ODENet-3/Hybrid-3 share 21–30 %."""

        for depth, (low, high) in [(20, (60, 70)), (56, (84, 92))]:
            ratio = model.report("rODENet-3", depth).target_ratio_percent[0]
            assert low < ratio < high
        for name in ("ODENet-3", "Hybrid-3"):
            for depth in (20, 56):
                ratio = model.report(name, depth).target_ratio_percent[0]
                assert 18 < ratio < 33


class TestQualitativeShape:
    def test_speedup_increases_with_depth_for_rodenet(self, model):
        for name in ("rODENet-1", "rODENet-2", "rODENet-3", "rODENet-1+2"):
            speedups = [model.report(name, d).overall_speedup for d in (20, 32, 44, 56)]
            assert all(a < b for a, b in zip(speedups, speedups[1:])), name

    def test_rodenet_speedups_exceed_odenet_and_hybrid(self, model):
        """The rODENet variants benefit most from the offload (Section 4.4)."""

        for depth in (20, 56):
            rodenet = model.report("rODENet-3", depth).overall_speedup
            odenet = model.report("ODENet-3", depth).overall_speedup
            hybrid = model.report("Hybrid-3", depth).overall_speedup
            assert rodenet > odenet
            assert rodenet > hybrid

    def test_hybrid_speedup_at_least_odenet(self, model):
        """"the overall speedup ... for Hybrid-3-N is equal to or higher than
        that of ODENet-3-N in all the sizes"."""

        for depth in (20, 32, 44, 56):
            hybrid = model.report("Hybrid-3", depth).overall_speedup
            odenet = model.report("ODENet-3", depth).overall_speedup
            assert hybrid >= odenet - 1e-9

    def test_resnet_has_no_offload_and_unit_speedup(self, model):
        report = model.report("ResNet", 32)
        assert report.offload_targets == ()
        assert report.overall_speedup == 1.0
        assert report.total_with_pl == report.total_without_pl

    def test_total_time_grows_with_depth(self, model):
        for name in TABLE5_MODELS:
            totals = [model.report(name, d).total_without_pl for d in (20, 32, 44, 56)]
            assert all(a < b for a, b in zip(totals, totals[1:])), name


class TestModelMechanics:
    def test_report_respects_custom_targets(self, model):
        report = model.report("ODENet", 56, offload_targets=("layer1", "layer2_2", "layer3_2"))
        assert len(report.target_with_pl) == 3
        assert report.overall_speedup > model.report("ODENet-3", 56).overall_speedup

    def test_table5_row_count(self, model):
        rows = model.table5()
        assert len(rows) == len(TABLE5_MODELS) * 4

    def test_layer_entry_lookup(self, model):
        report = model.report("rODENet-3", 20)
        entry = report.layer_entry("layer3_2")
        assert entry.offloaded and entry.executions == 6
        with pytest.raises(KeyError):
            report.layer_entry("layer2_2")  # removed in rODENet-3

    def test_as_dict_keys(self, model):
        d = model.report("rODENet-2", 32).as_dict()
        assert {"model", "N", "offload_target", "total_wo_pl_s", "overall_speedup"} <= set(d)

    def test_parallelism_sweep_monotone(self, model):
        sweep = model.parallelism_sweep("rODENet-3", 56, unit_counts=(1, 4, 16))
        speedups = [sweep[n].overall_speedup for n in (1, 4, 16)]
        assert speedups[0] < speedups[1] < speedups[2]
        # The sweep must restore the original configuration.
        assert model.n_units == 16

    def test_transfer_can_be_excluded(self):
        with_transfer = ExecutionTimeModel(include_transfer=True).report("rODENet-3", 56)
        without = ExecutionTimeModel(include_transfer=False).report("rODENet-3", 56)
        assert without.total_with_pl < with_transfer.total_with_pl

    def test_paper_offload_targets_mapping(self):
        assert PAPER_OFFLOAD_TARGETS["rODENet-1+2"] == ("layer1", "layer2_2")
        assert PAPER_OFFLOAD_TARGETS["ODENet-3"] == ("layer3_2",)
        assert PAPER_OFFLOAD_TARGETS["ResNet"] == ()

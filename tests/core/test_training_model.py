"""Tests for the training-time model (future-work analysis)."""

from __future__ import annotations

import pytest

from repro.core import ExecutionTimeModel, TrainingCostConfig, TrainingTimeModel


@pytest.fixture(scope="module")
def model():
    return TrainingTimeModel()


class TestPerLayerCosts:
    def test_training_costs_three_times_prediction(self, model):
        exec_model = model.execution_model
        for layer in ("layer1", "layer2_2", "layer3_2"):
            assert model.software_layer_training_seconds(layer) == pytest.approx(
                3.0 * exec_model.software_layer_seconds(layer)
            )
            assert model.pl_layer_training_seconds(layer) == pytest.approx(
                3.0 * exec_model.pl_layer_seconds(layer)
            )

    def test_custom_backward_factor(self):
        cheap = TrainingTimeModel(config=TrainingCostConfig(backward_mac_factor=1.0))
        default = TrainingTimeModel()
        assert cheap.software_layer_training_seconds("layer3_2") < default.software_layer_training_seconds("layer3_2")

    def test_optimizer_cost_scales_with_parameters(self, model):
        assert model.optimizer_seconds("ResNet", 56) > model.optimizer_seconds("rODENet-3", 56)
        assert model.optimizer_seconds("rODENet-3", 56) > 0


class TestReports:
    def test_training_step_slower_than_prediction(self, model):
        prediction = ExecutionTimeModel().report("rODENet-3", 56).total_without_pl
        training = model.report("rODENet-3", 56).step_seconds_software
        assert training > 2.5 * prediction

    def test_offload_speedup_similar_to_prediction_speedup(self, model):
        """Forward and backward scale together, so the training-step speedup
        tracks the prediction speedup of Table 5."""

        report = model.report("rODENet-3", 56)
        assert report.step_speedup == pytest.approx(2.66, abs=0.15)

    def test_resnet_has_no_offload_benefit(self, model):
        report = model.report("ResNet", 56)
        assert report.step_speedup == pytest.approx(1.0)
        assert report.target_share_percent == 0.0

    def test_target_share_close_to_prediction_share(self, model):
        training_share = model.report("rODENet-3", 56).target_share_percent
        prediction_share = ExecutionTimeModel().report("rODENet-3", 56).target_ratio_percent[0]
        assert training_share == pytest.approx(prediction_share, abs=3.0)

    def test_epoch_table_projections(self, model):
        table = model.epoch_table(("ResNet", "rODENet-3"), 56)
        assert table["rODENet-3"]["epoch_hours_offloaded"] < table["rODENet-3"]["epoch_hours_software"]
        assert table["ResNet"]["epoch_hours_offloaded"] == pytest.approx(
            table["ResNet"]["epoch_hours_software"]
        )
        # The projection makes the paper's implicit point: CIFAR-100 training
        # on the embedded CPU alone is utterly impractical (months).
        assert table["ResNet"]["full_run_days_software"] > 100

    def test_report_as_dict(self, model):
        d = model.report("rODENet-2", 32).as_dict()
        assert {"model", "N", "offload", "train_step_sw_s", "step_speedup"} <= set(d)

    def test_custom_targets(self, model):
        more = model.report("ODENet", 56, offload_targets=("layer1", "layer2_2", "layer3_2"))
        fewer = model.report("ODENet-3", 56)
        assert more.step_speedup > fewer.step_speedup

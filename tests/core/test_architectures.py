"""Tests for the executable network builders (all seven variants)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.core import VARIANT_NAMES, build_network, count_block_executions, variant_spec
from repro.core.odeblock import ODEBlock, PlainBlock
from repro.nn import CrossEntropyLoss, SGD, Tensor


def small(variant, depth=20, **kwargs):
    """A reduced-width instance for fast functional tests."""

    defaults = dict(num_classes=5, base_width=4, seed=1)
    defaults.update(kwargs)
    return build_network(variant, depth, **defaults)


class TestConstruction:
    @pytest.mark.parametrize("variant", VARIANT_NAMES)
    def test_forward_shape_all_variants(self, variant, rng):
        model = small(variant)
        x = Tensor(rng.normal(size=(2, 3, 16, 16)))
        out = model(x)
        assert out.shape == (2, 5)

    def test_stage_realisations_resnet(self):
        model = small("ResNet")
        assert isinstance(model.layer1, nn.Sequential)
        assert isinstance(model.layer3_2, nn.Sequential)
        assert len(model.layer1) == 3  # (20-2)/6

    def test_stage_realisations_odenet(self):
        model = small("ODENet")
        assert isinstance(model.layer1, ODEBlock)
        assert isinstance(model.layer2_2, ODEBlock)
        assert isinstance(model.layer3_2, ODEBlock)
        assert model.layer3_2.num_steps == 2  # (20-8)/6

    def test_stage_realisations_rodenet3(self):
        model = small("rODENet-3")
        assert isinstance(model.layer1, PlainBlock)
        assert isinstance(model.layer2_2, nn.Identity)
        assert isinstance(model.layer3_2, ODEBlock)
        assert model.layer3_2.num_steps == 6  # (20-8)/2

    def test_stage_realisations_hybrid3(self):
        model = small("Hybrid-3")
        assert isinstance(model.layer1, nn.Sequential)
        assert isinstance(model.layer3_2, ODEBlock)

    def test_downsample_stages_always_plain(self):
        for variant in VARIANT_NAMES:
            model = small(variant)
            assert isinstance(model.layer2_1, PlainBlock)
            assert isinstance(model.layer3_1, PlainBlock)
            assert model.layer2_1.stride == 2

    def test_unknown_stage_lookup(self):
        with pytest.raises(KeyError):
            small("ResNet").stage_module("conv9")

    def test_describe(self):
        desc = small("rODENet-3").describe()
        assert desc["layer3_2"].startswith("odeblock")
        assert desc["layer2_2"].startswith("removed")


class TestExecutionCounts:
    @pytest.mark.parametrize("variant", VARIANT_NAMES)
    @pytest.mark.parametrize("depth", [20, 32])
    def test_block_executions_match_table4(self, variant, depth):
        model = small(variant, depth)
        counts = count_block_executions(model)
        spec = variant_spec(variant, depth)
        for layer in ("layer1", "layer2_2", "layer3_2"):
            assert counts[layer] == spec.plan(layer).total_executions, (variant, layer)


class TestParameterSharing:
    def test_odenet_has_fewer_parameters_than_resnet(self):
        resnet = small("ResNet", 32)
        odenet = small("ODENet", 32)
        assert odenet.num_parameters() < resnet.num_parameters()

    def test_ode_variant_parameters_independent_of_depth(self):
        assert small("ODENet", 20).num_parameters() == small("ODENet", 56).num_parameters()

    def test_resnet_parameters_grow_with_depth(self):
        assert small("ResNet", 56).num_parameters() > small("ResNet", 20).num_parameters()

    def test_full_width_matches_parameter_model(self):
        """The executable ResNet-20 matches the analytical parameter count."""

        from repro.core import variant_parameter_count

        model = build_network("ResNet", 20, num_classes=100, base_width=16)
        assert model.num_parameters() == variant_parameter_count("ResNet", 20)

    def test_full_width_odenet_matches_parameter_model(self):
        from repro.core import variant_parameter_count

        model = build_network("rODENet-3", 20, num_classes=100, base_width=16)
        assert model.num_parameters() == variant_parameter_count("rODENet-3", 20)


class TestTraining:
    def test_one_sgd_step_reduces_loss(self, rng):
        model = small("rODENet-3")
        x = Tensor(rng.normal(size=(8, 3, 16, 16)))
        y = rng.integers(0, 5, size=8)
        criterion = CrossEntropyLoss()
        optimizer = SGD(model.parameters(), lr=0.05, momentum=0.0, weight_decay=0.0)

        model.train()
        losses = []
        for _ in range(3):
            logits = model(x)
            loss = criterion(logits, y)
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
            losses.append(loss.item())
        assert losses[-1] < losses[0]

    def test_eval_mode_is_deterministic(self, rng):
        model = small("ODENet")
        model.eval()
        x = Tensor(rng.normal(size=(2, 3, 16, 16)))
        out1 = model(x).data
        out2 = model(x).data
        np.testing.assert_allclose(out1, out2)

    def test_adjoint_option_trains(self, rng):
        model = small("rODENet-3", use_adjoint=True)
        model.train()
        x = Tensor(rng.normal(size=(4, 3, 16, 16)))
        y = rng.integers(0, 5, size=4)
        loss = CrossEntropyLoss()(model(x), y)
        loss.backward()
        grads = [p.grad for p in model.layer3_2.parameters()]
        assert any(g is not None and np.any(g != 0) for g in grads)

    def test_features_output_channels(self, rng):
        model = small("ResNet")
        h = model.features(Tensor(rng.normal(size=(1, 3, 16, 16))))
        assert h.shape == (1, 16, 4, 4)  # base_width*4 channels, /4 spatial

"""Tests of the accuracy-vs-Q-format sweep API and its CLI subcommands."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.api import Evaluator, accuracy_sweep
from repro.api.accuracy import COLUMNS, DEFAULT_FORMAT_LADDER, AccuracySweepResult
from repro.cli import main
from repro.fixedpoint import Q16, Q20, QFormat
from repro.fpga import HardwareODEBlock, BlockWeights
from repro.fpga.geometry import block_geometry


def small_sweep(**kwargs):
    defaults = dict(block="layer3_2", images=2, n_units=(16,), seed=0)
    defaults.update(kwargs)
    return accuracy_sweep(**defaults)


class TestAccuracySweepApi:
    def test_default_ladder_produces_one_row_per_format_and_unit_count(self):
        result = small_sweep(n_units=(8, 16))
        assert len(result) == len(DEFAULT_FORMAT_LADDER) * 2
        assert set(result.records()[0]) == set(COLUMNS)

    def test_error_shrinks_as_fraction_bits_grow(self):
        result = small_sweep(formats=[(32, 20), (16, 8), (8, 4)])
        rms = result.column("rms_error")
        assert rms[0] < rms[1] < rms[2]

    def test_bram_shrinks_with_word_length(self):
        result = small_sweep(formats=[(32, 20), (16, 8), (8, 4)])
        tiles = result.column("bram_tiles")
        assert tiles[0] > tiles[1] > tiles[2]

    def test_measured_error_within_analytic_bound_when_not_saturating(self):
        result = small_sweep(formats=[(32, 20), (24, 12), (16, 8)], input_scale=0.3)
        for rec in result.records():
            assert rec["overflow_fraction"] == 0.0
            assert rec["max_abs_error"] <= rec["error_bound"]

    def test_saturation_is_reported_for_hot_inputs_at_narrow_formats(self):
        result = small_sweep(formats=[(8, 6)], input_scale=4.0)
        assert result.records()[0]["overflow_fraction"] > 0.0

    def test_matches_explicit_batched_forward(self):
        """The sweep's measurement equals running the block by hand."""

        fmt = Q16
        result = small_sweep(formats=[fmt], images=3, seed=5)
        geometry = block_geometry("layer3_2")
        rng = np.random.default_rng(5)
        weights = BlockWeights.random(geometry, rng, scale=0.1)
        z = rng.normal(0.0, 0.5, size=(3, 64, 8, 8))
        hw = HardwareODEBlock(geometry, weights, n_units=16, qformat=fmt)
        out = hw.dynamics_batch(z)
        # The sweep's max error is measured against the float reference, so
        # replaying the quantised forward must reproduce a deviation of the
        # same magnitude (spot check the plumbing, not the exact value).
        assert result.records()[0]["max_abs_error"] > 0.0
        assert out.shape == z.shape

    def test_same_seed_is_reproducible(self):
        a = small_sweep(seed=3).records()
        b = small_sweep(seed=3).records()
        assert a == b

    def test_latency_and_timing_track_unit_count(self):
        result = small_sweep(formats=[(16, 8)], n_units=(1, 16, 32))
        latency = result.column("latency_s")
        assert latency[0] > latency[1] > latency[2]
        assert result.column("meets_timing").tolist() == [True, True, False]

    def test_pareto_front_is_nondominated_subset(self):
        result = small_sweep(n_units=(4, 16))
        front = result.pareto_front()
        assert 0 < len(front) <= len(result)
        lat, err = front.column("latency_s"), front.column("rms_error")
        order = np.argsort(lat)
        assert all(np.diff(err[order]) <= 0)

    def test_unknown_column_raises(self):
        with pytest.raises(KeyError, match="unknown column"):
            small_sweep(formats=[(16, 8)]).column("nope")

    def test_invalid_arguments_raise(self):
        with pytest.raises(ValueError):
            small_sweep(images=0)
        with pytest.raises(ValueError):
            small_sweep(n_units=())
        with pytest.raises(ValueError):
            small_sweep(n_units=(0,))
        with pytest.raises(ValueError, match="non-empty"):
            small_sweep(formats=[])

    def test_qformat_instances_accepted(self):
        result = small_sweep(formats=[Q20, QFormat(10, 7)])
        assert [r["qformat"] for r in result.records()] == [Q20.name, QFormat(10, 7).name]

    def test_evaluator_facade_delegates(self):
        result = Evaluator().accuracy_sweep(block="layer3_2", formats=[(16, 8)], images=2)
        assert isinstance(result, AccuracySweepResult)
        assert len(result) == 1

    def test_csv_and_json_round_trip(self):
        result = small_sweep(formats=[(16, 8), (8, 4)])
        csv_text = result.to_csv()
        assert csv_text.splitlines()[0] == ",".join(COLUMNS)
        assert len(csv_text.splitlines()) == 3
        data = json.loads(result.to_json())
        assert [row["word_length"] for row in data["points"]] == [16, 8]
        assert data["reproducibility"]["seed"] == 0
        assert data["reproducibility"]["workers"] == 1


class TestAccuracySweepCli:
    def run(self, capsys, *argv) -> str:
        assert main(list(argv)) == 0
        return capsys.readouterr().out

    def test_table_output(self, capsys):
        out = self.run(capsys, "accuracy-sweep", "--images", "2", "--wordlengths", "32", "16")
        assert "Accuracy-vs-format sweep" in out
        assert "Q20 (32-bit)" in out and "Q8 (16-bit)" in out

    def test_json_output_schema(self, capsys):
        out = self.run(capsys, "accuracy-sweep", "--images", "2", "--formats", "16:8", "--json")
        data = json.loads(out)
        assert set(data) == {"reproducibility", "points"}
        assert len(data["points"]) == 1
        assert set(data["points"][0]) == set(COLUMNS)
        assert data["reproducibility"]["chunk_size"] is None

    def test_table_echoes_reproducibility(self, capsys):
        out = self.run(capsys, "accuracy-sweep", "--images", "2", "--formats", "16:8")
        assert "reproducibility:" in out and "seed=0" in out

    def test_pareto_output(self, capsys):
        out = self.run(
            capsys, "accuracy-sweep", "--images", "2", "--n-units", "4", "16",
            "--format", "pareto",
        )
        assert "Pareto front" in out

    def test_csv_output(self, capsys):
        out = self.run(capsys, "accuracy-sweep", "--images", "2", "--formats", "12:6", "--format", "csv")
        assert out.splitlines()[0] == ",".join(COLUMNS)

    def test_bad_format_entry_is_clean_error(self, capsys):
        assert main(["accuracy-sweep", "--formats", "16-8"]) == 2
        err = capsys.readouterr().err
        assert "expected WL:FB" in err

    def test_formats_and_wordlengths_conflict(self, capsys):
        assert main(["accuracy-sweep", "--formats", "16:8", "--wordlengths", "32"]) == 2
        assert "not both" in capsys.readouterr().err

    def test_empty_formats_is_clean_error_not_default_ladder(self, capsys):
        assert main(["accuracy-sweep", "--formats"]) == 2
        assert "non-empty" in capsys.readouterr().err

    def test_sweep_qformats_error_names_the_right_flag(self, capsys):
        assert main(["sweep", "--qformats", "16-8"]) == 2
        err = capsys.readouterr().err
        assert "--qformats" in err and "--formats entry" not in err

    def test_unknown_pareto_metric_is_clean_error(self, capsys):
        assert main(["accuracy-sweep", "--images", "2", "--format", "pareto", "--pareto-x", "nope"]) == 2
        assert "unknown pareto metric" in capsys.readouterr().err


class TestTimingCli:
    def run(self, capsys, *argv) -> str:
        assert main(list(argv)) == 0
        return capsys.readouterr().out

    def test_default_sweep_matches_paper_observation(self, capsys):
        out = self.run(capsys, "timing")
        assert "conv_x16" in out and "conv_x32" in out
        assert "FAILED" in out  # conv_x32 at 100 MHz
        assert out.count("met") >= 4

    def test_custom_clock_and_units(self, capsys):
        out = self.run(capsys, "timing", "--n-units", "32", "--clock-mhz", "50")
        assert "conv_x32" in out and "met" in out and "FAILED" not in out

    def test_json_output(self, capsys):
        out = self.run(capsys, "timing", "--n-units", "8", "16", "--json")
        data = json.loads(out)
        assert [row["n_units"] for row in data] == [8, 16]
        assert {"fmax_mhz", "slack_ns", "meets_timing"} <= set(data[0])

    def test_invalid_units_clean_error(self, capsys):
        assert main(["timing", "--n-units", "0"]) == 2
        assert "positive" in capsys.readouterr().err

"""Tests of :class:`ResultCache` introspection (stats) and maintenance (prune)."""

from __future__ import annotations

import os

import pytest

from repro.api import Evaluator, ResultCache, Scenario, scenario_grid
from repro.api.cache import scenario_key


@pytest.fixture()
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


def _payload(scenario: Scenario) -> dict:
    return Evaluator().evaluate(scenario).as_dict()


class TestStats:
    def test_counts_hits_and_misses(self, cache):
        scenario = Scenario(model="rODENet-3", depth=20)
        assert cache.get(scenario) is None
        cache.put(scenario, _payload(scenario))
        assert cache.get(scenario) is not None
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["hit_rate"] == pytest.approx(0.5)
        assert stats["entries"] == 1
        assert stats["bytes"] > 0

    def test_fresh_cache_stats_are_zero(self, cache):
        stats = cache.stats()
        assert stats == {"hits": 0, "misses": 0, "hit_rate": 0.0, "entries": 0, "bytes": 0}

    def test_corrupt_entry_counts_as_miss(self, cache):
        scenario = Scenario(model="rODENet-3", depth=20)
        cache.put(scenario, _payload(scenario))
        for path in cache.root.glob("*/*.json"):
            path.write_text("{ truncated", encoding="utf-8")
        assert cache.get(scenario) is None
        assert cache.stats()["misses"] == 1

    def test_bytes_tracks_disk_footprint(self, cache):
        grid = scenario_grid(models=("rODENet-3",), depths=(20, 56))
        for scenario in grid:
            cache.put(scenario, _payload(scenario))
        stats = cache.stats()
        assert stats["entries"] == 2
        on_disk = sum(p.stat().st_size for p in cache.root.glob("*/*.json"))
        assert stats["bytes"] == on_disk


class TestPrune:
    def test_prunes_oldest_first(self, cache):
        grid = scenario_grid(models=("rODENet-3",), depths=(20, 32, 44, 56))
        for i, scenario in enumerate(grid):
            cache.put(scenario, _payload(scenario))
        # Make the ages unambiguous regardless of filesystem timestamp
        # granularity: older scenarios get strictly older mtimes.
        for i, scenario in enumerate(grid):
            path = cache._path(scenario_key(scenario))
            os.utime(path, (1000.0 + i, 1000.0 + i))
        removed = cache.prune(max_entries=2)
        assert removed == 2
        assert len(cache) == 2
        # The newest two entries (depths 44, 56) survive.
        assert cache.get(grid[2]) is not None
        assert cache.get(grid[3]) is not None
        assert cache.get(grid[0]) is None

    def test_prune_noop_when_under_limit(self, cache):
        scenario = Scenario(model="rODENet-3", depth=20)
        cache.put(scenario, _payload(scenario))
        assert cache.prune(max_entries=5) == 0
        assert len(cache) == 1

    def test_prune_to_zero_empties_the_cache(self, cache):
        scenario = Scenario(model="rODENet-3", depth=20)
        cache.put(scenario, _payload(scenario))
        assert cache.prune(max_entries=0) == 1
        assert len(cache) == 0

    def test_negative_limit_rejected(self, cache):
        with pytest.raises(ValueError, match="non-negative"):
            cache.prune(max_entries=-1)

"""Evaluator facade: correctness against the hand-assembled models, memoization."""

from __future__ import annotations

import json

import pytest

from repro.api import Evaluator, Scenario
from repro.core import ExecutionTimeModel, OffloadPlanner
from repro.core.training_model import TrainingTimeModel
from repro.fpga.power import PowerModel


@pytest.fixture(scope="module")
def evaluator() -> Evaluator:
    return Evaluator()


@pytest.fixture(scope="module")
def headline(evaluator):
    """The paper's headline design point: rODENet-3-56, conv_x16, Q20."""

    return evaluator.evaluate(Scenario())


class TestAgainstHandAssembledModels:
    def test_timing_matches_execution_model(self, headline):
        report = ExecutionTimeModel(n_units=16).report("rODENet-3", 56)
        assert headline.timing["total_wo_pl_s"] == report.total_without_pl
        assert headline.timing["total_w_pl_s"] == report.total_with_pl
        assert headline.timing["overall_speedup"] == report.overall_speedup

    def test_resources_match_offload_planner(self, headline):
        decision = OffloadPlanner(n_units=16).plan("rODENet-3", 56)
        assert headline.resource_vector() == decision.resources.as_dict()
        assert headline.resources["targets"] == list(decision.targets)
        assert headline.resources["fits_device"] is decision.fits_device
        assert headline.resources["meets_timing"] is decision.meets_timing

    def test_energy_matches_power_model(self, headline):
        execution = ExecutionTimeModel(n_units=16)
        decision = OffloadPlanner(n_units=16, execution_model=execution).plan("rODENet-3", 56)
        comparison = PowerModel(execution_model=execution).compare("rODENet-3", 56, decision.resources)
        assert headline.energy == comparison

    def test_training_matches_training_model(self, headline):
        model = TrainingTimeModel()
        expected = model.report("rODENet-3", 56).as_dict()
        expected.update(model.epoch_table(("rODENet-3",), 56)["rODENet-3"])
        assert headline.training == expected

    def test_speedup_vs_resnet(self, headline):
        expected = ExecutionTimeModel(n_units=16).speedup_vs_resnet("rODENet-3", 56)
        assert headline.timing["speedup_vs_resnet"] == pytest.approx(expected)
        assert headline.timing["speedup_vs_resnet"] == pytest.approx(2.745, abs=0.01)


class TestScenarioKnobs:
    def test_n_units_changes_timing_and_resources(self, evaluator):
        r8 = evaluator.evaluate(Scenario(n_units=8))
        r16 = evaluator.evaluate(Scenario(n_units=16))
        assert r8.timing["overall_speedup"] < r16.timing["overall_speedup"]
        assert r8.resources["dsp"] < r16.resources["dsp"]

    def test_narrow_qformat_shrinks_bram_and_param_bytes(self, evaluator):
        q20 = evaluator.evaluate(Scenario())
        q16 = evaluator.evaluate(Scenario(word_length=16, fraction_bits=8))
        assert q16.resources["bram"] < q20.resources["bram"]
        # Parameter storage follows the scenario's word length.
        assert q16.parameters["param_bytes"] == q20.parameters["param_bytes"] // 2
        # Timing is unaffected: the cycle model is word-length independent.
        assert q16.timing["total_w_pl_s"] == q20.timing["total_w_pl_s"]

    def test_rk4_quadruples_odeblock_work(self, evaluator):
        euler = evaluator.evaluate(Scenario())
        rk4 = evaluator.evaluate(Scenario(solver="rk4"))
        assert rk4.timing["solver_stages"] == 4
        # The offload target (layer3_2, an ODEBlock) costs exactly 4x.
        assert rk4.timing["target_wo_pl_s"][0] == pytest.approx(
            4.0 * euler.timing["target_wo_pl_s"][0]
        )
        # Fixed layers (conv1, fc, ...) do not scale, so the total is < 4x.
        assert rk4.timing["total_wo_pl_s"] < 4.0 * euler.timing["total_wo_pl_s"]

    def test_offload_decision_consistent_with_evaluate(self, evaluator):
        # The decision's expected speedup must agree with the result's timing
        # section even when the solver scales the ODEBlock work.
        scenario = Scenario(solver="rk4")
        decision = evaluator.offload_decision(scenario)
        result = evaluator.evaluate(scenario)
        assert decision.expected_speedup == result.timing["overall_speedup"]

    def test_slower_pl_clock_reduces_speedup(self, evaluator):
        fast = evaluator.evaluate(Scenario())
        slow = evaluator.evaluate(Scenario(pl_clock_hz=50e6))
        assert slow.timing["overall_speedup"] < fast.timing["overall_speedup"]

    def test_resnet_has_no_offload(self, evaluator):
        result = evaluator.evaluate(Scenario(model="ResNet", depth=20))
        assert result.resources["targets"] == []
        assert result.timing["overall_speedup"] == 1.0
        assert result.energy["energy_ratio"] < 1.0  # idle PL burns static power


class TestMemoization:
    def test_same_scenario_returns_cached_result(self):
        ev = Evaluator()
        first = ev.evaluate(Scenario())
        second = ev.evaluate(Scenario())  # a distinct but equal Scenario object
        assert second is first
        assert ev.cached_result_count == 1

    def test_execution_models_shared_across_compatible_scenarios(self):
        ev = Evaluator()
        ev.evaluate(Scenario(model="ResNet", depth=20))
        ev.evaluate(Scenario(model="rODENet-3", depth=56))
        assert len(ev._execution_models) == 1

    def test_clear_cache(self):
        ev = Evaluator()
        ev.evaluate(Scenario())
        ev.clear_cache()
        assert ev.cached_result_count == 0


class TestResultViews:
    def test_as_dict_sections(self, headline):
        data = headline.as_dict()
        assert set(data) == {"scenario", "parameters", "resources", "timing", "energy", "training"}
        assert data["scenario"]["model"] == "rODENet-3"

    def test_to_json_round_trips(self, headline):
        data = json.loads(headline.to_json())
        assert data["timing"]["overall_speedup"] == pytest.approx(2.66, abs=0.01)

    def test_csv_row_aligns_with_header(self, headline):
        header = headline.csv_header().split(",")
        row = headline.to_csv_row().split(",")
        assert len(header) == len(row)
        assert "bram" in header and "overall_speedup" in header and "energy_ratio" in header

    def test_sections_are_read_only_and_as_dict_copies(self, headline):
        with pytest.raises(TypeError):
            headline.timing["overall_speedup"] = 0.0
        data = headline.as_dict()
        data["resources"]["targets"].append("layer1")
        assert headline.resources["targets"] == ["layer3_2"]

    def test_render_contains_every_section(self, headline):
        text = headline.render()
        for section in ("scenario", "parameters", "resources", "timing", "energy", "training"):
            assert f"[{section}]" in text

    def test_table5_records_match_analysis_module(self, evaluator):
        from repro.analysis import table5_records

        assert evaluator.table5_records(depths=(56,)) == table5_records(depths=(56,))

"""Differential conformance: batch plan/timing columns vs the scalar Evaluator.

Phase 2 of the batch engine replaced the per-unique-key scalar BRAM plans and
timing closure with closed-form array kernels.  These tests are the
regression net for that refactor: over randomized scenario grids spanning
the depth / word-length / Q-format / n_units / clock / board axes, every
resource and timing column of :func:`sweep_batch` must equal the scalar
:class:`Evaluator`'s report field-for-field — not approximately, exactly.

The grids come from seeded hypothesis strategies (reproducible, adversarial
about axis combinations) plus one fixed 200+-scenario random sample.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import Evaluator, Scenario, scenario_grid, sweep, sweep_batch
from repro.api.batch import RESOURCE_KEYS, TIMING_KEYS
from repro.core import SUPPORTED_DEPTHS
from repro.core.execution_model import TABLE5_MODELS

#: The one board the paper evaluates (the axis exists; it has one point).
BOARD_AXIS = ("PYNQ-Z2",)


# -- seeded hypothesis strategies over the scenario axes ---------------------------------


@st.composite
def qformat_axes(draw):
    """An arbitrary (word_length, fraction_bits) pair a Scenario accepts."""

    word_length = draw(st.integers(min_value=2, max_value=64))
    fraction_bits = draw(st.integers(min_value=0, max_value=word_length - 1))
    return word_length, fraction_bits


@st.composite
def scenarios(draw) -> Scenario:
    word_length, fraction_bits = draw(qformat_axes())
    return Scenario(
        model=draw(st.sampled_from(TABLE5_MODELS)),
        depth=draw(st.sampled_from(SUPPORTED_DEPTHS)),
        n_units=draw(st.integers(min_value=1, max_value=128)),
        word_length=word_length,
        fraction_bits=fraction_bits,
        solver=draw(st.sampled_from(["euler", "rk4"])),
        board=draw(st.sampled_from(BOARD_AXIS)),
        pl_clock_hz=draw(st.sampled_from([50e6, 100e6, 125e6, 142e6, 250e6])),
    )


def random_plan_grid(n: int, seed: int) -> list:
    """A fixed random sample dense in *distinct plan keys* (formats x units)."""

    rng = np.random.default_rng(seed)
    grid = []
    for _ in range(n):
        word_length = int(rng.integers(2, 65))
        fraction_bits = int(rng.integers(0, word_length))
        grid.append(
            Scenario(
                model=TABLE5_MODELS[rng.integers(len(TABLE5_MODELS))],
                depth=SUPPORTED_DEPTHS[rng.integers(len(SUPPORTED_DEPTHS))],
                n_units=int(rng.integers(1, 129)),
                word_length=word_length,
                fraction_bits=fraction_bits,
                solver=str(rng.choice(["euler", "rk4"])),
                pl_clock_hz=float(rng.choice([50e6, 100e6, 142e6, 200e6])),
            )
        )
    return grid


def assert_plan_columns_match(batch, loop_results) -> None:
    """Every resource/timing column equals the scalar report, field for field."""

    records = [r.flat_dict() for r in loop_results]
    for key in RESOURCE_KEYS + TIMING_KEYS:
        batch_rows = [rec[key] for rec in batch.records()]
        loop_rows = [rec[key] for rec in records]
        assert batch_rows == loop_rows, f"column '{key}' diverges from the scalar evaluator"


class TestDifferentialConformance:
    def test_plan_columns_over_200_scenario_random_grid(self):
        grid = random_plan_grid(220, seed=20260726)
        # The grid must actually stress the plan axes: count distinct keys.
        format_keys = {(s.word_length, s.fraction_bits) for s in grid}
        timing_keys = {(s.n_units, s.pl_clock_hz) for s in grid}
        assert len(format_keys) > 100
        assert len(timing_keys) > 100
        loop = sweep(grid, Evaluator())
        batch = sweep_batch(grid)
        assert_plan_columns_match(batch, loop)
        # ... and the full results agree too (every other column).
        assert batch.to_results() == loop

    @given(st.lists(scenarios(), min_size=4, max_size=24))
    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_plan_columns_on_hypothesis_grids(self, grid):
        loop = sweep(grid, Evaluator())
        batch = sweep_batch(grid)
        assert_plan_columns_match(batch, loop)

    def test_structured_grid_with_explicit_qformat_axis(self):
        grid = scenario_grid(
            models=("rODENet-3", "Hybrid-3"),
            depths=(20, 56),
            n_units=(3, 16, 33),
            qformats=((16, 8), (16, 10), (16, 2), (12, 6), (9, 5), (33, 20)),
        )
        assert len(grid) == 2 * 2 * 3 * 6
        loop = sweep(grid, Evaluator())
        batch = sweep_batch(grid)
        assert_plan_columns_match(batch, loop)
        assert batch.to_results() == loop


class TestPlanColumnSemantics:
    """Spot-checks that the kernel-backed columns mean what they claim."""

    def test_bram_grows_with_word_length(self):
        grid = [
            Scenario(model="rODENet-3", depth=56, word_length=wl, fraction_bits=wl // 2)
            for wl in (8, 16, 32, 64)
        ]
        bram = sweep_batch(grid).column("bram")
        assert all(a <= b for a, b in zip(bram, bram[1:]))
        assert bram[0] < bram[-1]

    def test_meets_timing_tracks_unit_count_at_100mhz(self):
        grid = [Scenario(model="rODENet-3", depth=56, n_units=n) for n in (1, 16, 32)]
        meets = sweep_batch(grid).column("meets_timing")
        assert meets.tolist() == [True, True, False]

    def test_meets_timing_depends_on_clock(self):
        grid = [
            Scenario(model="rODENet-3", depth=56, n_units=32, pl_clock_hz=hz)
            for hz in (50e6, 100e6)
        ]
        meets = sweep_batch(grid).column("meets_timing")
        assert meets.tolist() == [True, False]

    def test_fits_device_fails_for_oversized_bram(self):
        """64-bit words triple layer3_2's plan; rODENet-3 still fits, the
        three-block ODENet plan does not."""

        fits = sweep_batch(
            [
                Scenario(model="ODENet", depth=56, word_length=64, fraction_bits=32),
                Scenario(model="ODENet", depth=56, word_length=8, fraction_bits=4),
            ]
        ).column("fits_device")
        assert fits.tolist() == [False, True]

"""Batch-evaluation engine: loop-engine equivalence, Pareto, cache, fallback."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.api import (
    BatchResult,
    Evaluator,
    ResultCache,
    Scenario,
    pareto_indices,
    results_to_csv,
    results_to_json,
    scenario_grid,
    sweep,
    sweep_batch,
)
from repro.api.batch import FLAT_COLUMNS
from repro.api.cache import scenario_key
from repro.core import SUPPORTED_DEPTHS
from repro.core.execution_model import TABLE5_MODELS


class PassthroughScenario(Scenario):
    """A Scenario subclass: must take the loop-engine fallback path."""


def random_grid(n: int, seed: int = 0) -> list:
    """A random sample of the full design space (incl. solver/clock axes)."""

    rng = np.random.default_rng(seed)
    scenarios = []
    for _ in range(n):
        word_length, fraction_bits = [(32, 20), (16, 8), (12, 6), (8, 4)][rng.integers(4)]
        scenarios.append(
            Scenario(
                model=TABLE5_MODELS[rng.integers(len(TABLE5_MODELS))],
                depth=SUPPORTED_DEPTHS[rng.integers(len(SUPPORTED_DEPTHS))],
                n_units=int(rng.choice([1, 2, 4, 8, 16, 32, 64])),
                word_length=word_length,
                fraction_bits=fraction_bits,
                solver=str(rng.choice(["euler", "rk4"])),
                pl_clock_hz=float(rng.choice([50e6, 100e6, 142e6])),
            )
        )
    return scenarios


class TestEquivalence:
    """The regression net for the vectorization refactor."""

    def test_batch_equals_loop_on_random_grid_field_for_field(self):
        grid = random_grid(100, seed=42)
        loop = sweep(grid, Evaluator())
        batch = sweep_batch(grid)
        assert batch.to_results() == loop  # exact Result equality, every field

    def test_batch_equals_loop_on_structured_grid(self):
        grid = scenario_grid(
            models=TABLE5_MODELS,
            depths=SUPPORTED_DEPTHS,
            n_units=(4, 16),
            word_lengths=(16, 32),
        )
        assert len(grid) >= 100
        loop = sweep(grid, Evaluator())
        batch = sweep_batch(grid)
        assert batch.to_results() == loop

    def test_csv_and_json_are_byte_identical_to_loop(self):
        grid = scenario_grid(models=("rODENet-3", "ResNet"), depths=(20, 56), n_units=(8, 16))
        loop = sweep(grid, Evaluator())
        batch = sweep_batch(grid)
        assert batch.to_csv() == results_to_csv(loop)
        assert batch.to_json() == results_to_json(loop)

    def test_records_match_loop_flat_dicts(self):
        grid = scenario_grid(models=("ODENet", "Hybrid-3"), depths=(20, 44), solvers=("rk4",))
        loop = sweep(grid, Evaluator())
        batch = sweep_batch(grid)
        assert batch.records() == [r.flat_dict() for r in loop]

    def test_rows_preserve_input_order(self):
        grid = random_grid(20, seed=7)
        batch = sweep_batch(grid)
        assert batch.scenarios == grid
        assert [r["model"] for r in batch.records()] == [s.model for s in grid]


class TestBatchResult:
    def test_len_and_columns(self):
        batch = sweep_batch(scenario_grid(models=("rODENet-3",), depths=(20, 56)))
        assert len(batch) == 2
        assert batch.column_names == FLAT_COLUMNS
        speedups = batch.column("overall_speedup")
        assert speedups.shape == (2,)
        assert (speedups > 1.0).all()

    def test_unknown_column_raises(self):
        batch = sweep_batch([Scenario()])
        with pytest.raises(KeyError, match="unknown column"):
            batch.column("nope")

    def test_empty_sweep(self):
        batch = sweep_batch([])
        assert len(batch) == 0
        assert batch.records() == []
        assert batch.to_csv() == ""
        assert json.loads(batch.to_json()) == []

    def test_take_subsets_rows(self):
        grid = scenario_grid(models=("rODENet-3",), depths=SUPPORTED_DEPTHS)
        batch = sweep_batch(grid)
        sub = batch.take([3, 0])
        assert sub.scenarios == [grid[3], grid[0]]
        assert sub.record(0) == batch.record(3)

    def test_json_round_trips(self):
        batch = sweep_batch([Scenario()])
        data = json.loads(batch.to_json())
        assert data[0]["scenario"]["model"] == "rODENet-3"
        assert data[0]["timing"]["overall_speedup"] == pytest.approx(2.66, abs=0.01)

    def test_from_rows_round_trip(self):
        grid = random_grid(10, seed=3)
        batch = sweep_batch(grid)
        rebuilt = BatchResult.from_rows(grid, batch.as_dicts())
        assert rebuilt.to_results() == batch.to_results()


class TestPareto:
    def test_pareto_indices_minimize(self):
        x = [1.0, 2.0, 3.0, 2.0]
        y = [3.0, 2.0, 1.0, 4.0]
        idx = pareto_indices(x, y)
        assert list(idx) == [0, 1, 2]  # (2, 4) is dominated by (2, 2)

    def test_pareto_indices_maximize(self):
        x = [1.0, 2.0, 3.0]
        y = [5.0, 9.0, 1.0]
        idx = pareto_indices(x, y, maximize_x=True, maximize_y=True)
        assert set(idx) == {1, 2}  # (1, 5) dominated by (2, 9)

    def test_pareto_indices_duplicates_kept_once(self):
        idx = pareto_indices([1.0, 1.0], [2.0, 2.0])
        assert len(idx) == 1

    def test_pareto_shape_mismatch(self):
        with pytest.raises(ValueError, match="same length"):
            pareto_indices([1.0], [1.0, 2.0])

    def test_front_is_mutually_non_dominated(self):
        batch = sweep_batch(
            scenario_grid(
                models=("rODENet-3", "Hybrid-3"), depths=SUPPORTED_DEPTHS, n_units=(1, 4, 16)
            )
        )
        front = batch.pareto_front("total_w_pl_s", "bram", maximize_x=False, maximize_y=False)
        assert 0 < len(front) <= len(batch)
        xs = front.column("total_w_pl_s")
        ys = front.column("bram")
        for i in range(len(front)):
            for j in range(len(front)):
                if i == j:
                    continue
                dominated = xs[j] <= xs[i] and ys[j] <= ys[i] and (xs[j] < xs[i] or ys[j] < ys[i])
                assert not dominated

    def test_front_with_maximized_speedup(self):
        batch = sweep_batch(scenario_grid(models=TABLE5_MODELS, depths=(56,), n_units=(1, 16)))
        front = batch.pareto_front("bram", "overall_speedup", maximize_y=True)
        # The best-speedup row always survives.
        assert front.column("overall_speedup").max() == batch.column("overall_speedup").max()


class TestCache:
    def test_cache_populates_and_hits(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        grid = scenario_grid(models=("rODENet-3",), depths=(20, 56), n_units=(8, 16))
        first = sweep_batch(grid, cache=cache)
        assert len(cache) == len(grid)
        second = sweep_batch(grid, cache=cache)
        assert second.to_results() == first.to_results()

    def test_cached_rows_equal_loop_engine(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        grid = random_grid(12, seed=11)
        sweep_batch(grid, cache=cache)  # populate
        cached = sweep_batch(grid, cache=cache)  # served from disk
        assert cached.to_results() == sweep(grid, Evaluator())

    def test_incremental_sweep_only_adds_new_entries(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        small = scenario_grid(models=("rODENet-3",), depths=(20, 56))
        sweep_batch(small, cache=cache)
        assert len(cache) == 2
        large = scenario_grid(models=("rODENet-3",), depths=SUPPORTED_DEPTHS)
        merged = sweep_batch(large, cache=cache)
        assert len(cache) == 4
        assert merged.to_results() == sweep(large, Evaluator())

    def test_schema_stale_entry_counts_as_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        scenario = Scenario()
        sweep_batch([scenario], cache=cache)
        payload = cache.get(scenario)
        del payload["energy"]["energy_ratio"]  # simulate an older schema
        cache.put(scenario, payload)
        assert cache.get(scenario) is None
        again = sweep_batch([scenario], cache=cache)  # recomputes, no KeyError
        assert again.to_results() == sweep([scenario], Evaluator())

    def test_corrupt_entry_is_recomputed(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        scenario = Scenario()
        sweep_batch([scenario], cache=cache)
        path = cache._path(scenario_key(scenario))
        path.write_text("{not json", encoding="utf-8")
        assert cache.get(scenario) is None
        again = sweep_batch([scenario], cache=cache)
        assert again.to_results() == sweep([scenario], Evaluator())

    def test_distinct_scenarios_have_distinct_keys(self):
        assert scenario_key(Scenario(depth=20)) != scenario_key(Scenario(depth=56))
        assert scenario_key(Scenario()) == scenario_key(Scenario())

    def test_subclass_never_collides_with_base_scenario(self, tmp_path):
        # A subclass may override derived behaviour, so a cached base-Scenario
        # result must never be served for it (and vice versa).
        assert scenario_key(Scenario()) != scenario_key(PassthroughScenario())
        cache = ResultCache(tmp_path / "cache")
        sweep_batch([Scenario()], cache=cache)
        assert cache.get(PassthroughScenario()) is None

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        sweep_batch([Scenario()], cache=cache)
        assert len(cache) == 1
        cache.clear()
        assert len(cache) == 0


class TestProcessPoolFallback:
    def test_subclass_scenarios_fall_back_and_match_loop(self):
        plain = scenario_grid(models=("rODENet-3",), depths=(20, 56))
        subclassed = [PassthroughScenario(model="Hybrid-3", depth=d) for d in (20, 56)]
        mixed = [plain[0], subclassed[0], plain[1], subclassed[1]]
        batch = sweep_batch(mixed, fallback_workers=2)
        loop = sweep(mixed, Evaluator())
        assert batch.to_results() == loop
        assert [r["model"] for r in batch.records()] == [s.model for s in mixed]

    def test_forced_fallback_matches_vector_path(self):
        grid = scenario_grid(models=("rODENet-3", "ResNet"), depths=(20, 56))
        vector = sweep_batch(grid)
        forced = sweep_batch(grid, vectorizable=lambda s: False, fallback_workers=1)
        assert forced.to_results() == vector.to_results()

"""Tests of the streaming / sharded `accuracy_sweep` execution modes.

The contract under test: chunked sweeps are a pure function of
``(seed, chunk_size)`` — never of the worker count (per-chunk
``default_rng((seed, chunk))`` input streams, accumulators reduced in
ascending chunk order) — and the streaming accumulators reproduce the
whole-batch `error_report` formulas exactly when the batch is one chunk.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.api.accuracy import (
    AccuracySweepResult,
    _chunk_bounds,
    _chunk_inputs,
    _finalize_error_stats,
    _measure_chunk,
    _merge_reference_stats,
    _reduce_error_stats,
    accuracy_sweep,
)
from repro.cli import main
from repro.fixedpoint import Q16
from repro.fixedpoint.errors import error_report
from repro.fpga import BlockWeights, HardwareODEBlock
from repro.fpga.geometry import block_geometry

FORMATS = [(32, 20), (12, 6)]


def chunked_sweep(**kwargs):
    defaults = dict(
        block="layer1", formats=FORMATS, images=10, seed=7, chunk_size=4, workers=1
    )
    defaults.update(kwargs)
    return accuracy_sweep(**defaults)


class TestChunkPlumbing:
    def test_chunk_bounds_cover_the_batch_without_overlap(self):
        assert _chunk_bounds(10, 4) == [(0, 4), (4, 8), (8, 10)]
        assert _chunk_bounds(4, 4) == [(0, 4)]
        assert _chunk_bounds(3, 8) == [(0, 3)]

    def test_chunk_inputs_depend_only_on_seed_and_chunk(self):
        geometry = block_geometry("layer1")
        a = _chunk_inputs(3, 1, 4, geometry, 0.5)
        b = _chunk_inputs(3, 1, 4, geometry, 0.5)
        c = _chunk_inputs(3, 2, 4, geometry, 0.5)
        np.testing.assert_array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_streamed_accumulators_match_error_report_on_one_chunk(self):
        """Single-chunk streaming == the legacy whole-batch formulas, bitwise."""

        geometry = block_geometry("layer1")
        rng = np.random.default_rng(0)
        weights = BlockWeights.random(geometry, rng, scale=0.1)
        z = rng.normal(0.0, 0.5, size=(3, 16, 32, 32))
        acc = _measure_chunk(z, geometry, weights, Q16, collect_ref=True)
        ref_stats = acc.pop("ref_stats")
        stats = _finalize_error_stats(_reduce_error_stats([acc]))

        from repro.api.accuracy import _float_forward

        stages = _float_forward(weights, z, stride=geometry.stride)
        hw = HardwareODEBlock(geometry, weights, qformat=Q16)
        report = error_report(stages["output"], hw.dynamics_batch(z), Q16)
        assert stats["max_abs_error"] == report.max_abs_error
        assert stats["rms_error"] == report.rms_error
        assert stats["sqnr_db"] == report.sqnr_db
        assert stats["overflow_fraction"] == report.overflow_fraction
        assert ref_stats["input_max"] == float(np.max(np.abs(z)))

    def test_merge_reference_stats_is_exact_maxmin_reduction(self):
        geometry = block_geometry("layer1")
        rng = np.random.default_rng(1)
        weights = BlockWeights.random(geometry, rng, scale=0.1)
        za = rng.normal(0.0, 0.5, size=(2, 16, 32, 32))
        zb = rng.normal(0.0, 0.5, size=(2, 16, 32, 32))

        from repro.api.accuracy import _float_forward, _reference_stats

        sa = _reference_stats(za, _float_forward(weights, za, stride=1))
        sb = _reference_stats(zb, _float_forward(weights, zb, stride=1))
        whole = _reference_stats(
            np.concatenate([za, zb]),
            _float_forward(weights, np.concatenate([za, zb]), stride=1),
        )
        merged = _merge_reference_stats([sa, sb])
        assert merged["input_max"] == whole["input_max"]
        assert merged["hidden_max"] == whole["hidden_max"]
        np.testing.assert_array_equal(merged["centered1_max"], whole["centered1_max"])
        np.testing.assert_array_equal(merged["sigma2_min"], whole["sigma2_min"])


class TestWorkerInvariance:
    def test_workers_1_equals_workers_4(self):
        """The issue's headline assertion: shard count moves nothing."""

        serial = chunked_sweep(workers=1)
        sharded = chunked_sweep(workers=4)
        assert serial.records() == sharded.records()

    def test_chunked_results_are_deterministic_across_runs(self):
        assert chunked_sweep().records() == chunked_sweep().records()

    def test_chunk_size_is_part_of_the_contract(self):
        """Different chunking -> different (but each deterministic) streams."""

        a = chunked_sweep(chunk_size=4)
        b = chunked_sweep(chunk_size=5)
        assert a.records() != b.records()

    def test_partial_final_chunk_is_handled(self):
        result = chunked_sweep(images=9, chunk_size=4)
        assert result.chunks == 3
        assert len(result) == len(FORMATS)


class TestValidationAndEcho:
    def test_workers_require_chunk_size(self):
        with pytest.raises(ValueError, match="requires chunk_size"):
            accuracy_sweep(block="layer1", images=4, workers=2)

    def test_bad_worker_and_chunk_values(self):
        with pytest.raises(ValueError, match="workers"):
            accuracy_sweep(block="layer1", images=4, workers=0)
        with pytest.raises(ValueError, match="chunk_size"):
            accuracy_sweep(block="layer1", images=4, chunk_size=0)

    def test_reproducibility_echo_fields(self):
        result = chunked_sweep(images=10, chunk_size=4, workers=2)
        echo = result.reproducibility
        assert echo["seed"] == 7
        assert echo["chunk_size"] == 4
        assert echo["chunks"] == 3
        assert echo["workers"] == 2
        assert echo["worker_count_invariant"] is True
        assert "per-chunk" in echo["generator"]

    def test_legacy_mode_reports_single_stream(self):
        result = accuracy_sweep(block="layer1", formats=FORMATS, images=2)
        echo = result.reproducibility
        assert echo["chunk_size"] is None and echo["chunks"] == 1
        assert "single-stream" in echo["generator"]

    def test_pareto_front_carries_the_echo(self):
        front = chunked_sweep().pareto_front()
        assert front.reproducibility["chunk_size"] == 4

    def test_to_json_carries_the_echo(self):
        payload = json.loads(chunked_sweep().to_json())
        assert payload["reproducibility"]["chunks"] == 3
        assert len(payload["points"]) == len(FORMATS)


class TestStreamingCli:
    def run(self, capsys, *argv) -> str:
        assert main(list(argv)) == 0
        return capsys.readouterr().out

    def test_workers_and_chunk_size_flags(self, capsys):
        base = (
            "accuracy-sweep", "--block", "layer1", "--formats", "16:8",
            "--images", "6", "--chunk-size", "3",
        )
        serial = self.run(capsys, *base, "--workers", "1", "--json")
        sharded = self.run(capsys, *base, "--workers", "2", "--json")
        serial_data, sharded_data = json.loads(serial), json.loads(sharded)
        assert serial_data["points"] == sharded_data["points"]
        assert sharded_data["reproducibility"]["workers"] == 2

    def test_table_echoes_chunking(self, capsys):
        out = self.run(
            capsys, "accuracy-sweep", "--block", "layer1", "--formats", "16:8",
            "--images", "4", "--chunk-size", "2",
        )
        assert "reproducibility:" in out
        assert "chunk_size=2" in out and "chunks=2" in out

    def test_workers_without_chunk_size_is_clean_error(self, capsys):
        assert main(["accuracy-sweep", "--images", "4", "--workers", "2"]) == 2
        assert "requires chunk_size" in capsys.readouterr().err

"""Scenario validation and grid construction."""

from __future__ import annotations

import pytest

from repro.api import DEFAULT_FRACTION_BITS, SCENARIO_MODELS, Scenario, scenario_grid
from repro.core import SUPPORTED_DEPTHS, TABLE5_MODELS


class TestValidation:
    def test_defaults_are_the_papers_headline_design(self):
        s = Scenario()
        assert s.model == "rODENet-3"
        assert s.depth == 56
        assert s.n_units == 16
        assert s.qformat.word_length == 32 and s.qformat.fraction_bits == 20
        assert s.solver == "euler"
        assert s.pl_clock_hz == 100e6

    def test_model_names_are_canonicalised(self):
        assert Scenario(model="rodenet-3").model == "rODENet-3"
        assert Scenario(model="odenet-3").model == "ODENet-3"

    def test_unknown_model_raises(self):
        with pytest.raises(ValueError, match="unknown model"):
            Scenario(model="VGG")

    @pytest.mark.parametrize("depth", [7, 19, 21, 55])
    def test_bad_depth_raises(self, depth):
        with pytest.raises(ValueError):
            Scenario(depth=depth)

    def test_depth_incompatible_with_variant_budget_raises(self):
        # rODENet-1+2 needs the execution budget to split evenly across two
        # ODEBlocks; N=26 satisfies the family divisibility but not the split.
        with pytest.raises(ValueError):
            Scenario(model="rODENet-1+2", depth=26)

    @pytest.mark.parametrize("n_units", [0, -1])
    def test_bad_n_units_raises(self, n_units):
        with pytest.raises(ValueError, match="n_units"):
            Scenario(n_units=n_units)

    def test_oversized_n_units_allowed(self):
        # The seed CLI accepted any positive count (the cycle model caps
        # effective parallelism by the output channels); keep that behavior.
        assert Scenario(n_units=128).n_units == 128

    def test_bad_qformat_raises(self):
        with pytest.raises(ValueError):
            Scenario(word_length=16, fraction_bits=16)

    def test_unknown_solver_raises(self):
        with pytest.raises(ValueError, match="solver"):
            Scenario(solver="adams-bashforth")

    def test_unknown_board_raises(self):
        with pytest.raises(ValueError, match="board"):
            Scenario(board="ZCU102")

    def test_scenario_is_hashable_and_comparable(self):
        assert Scenario() == Scenario()
        assert hash(Scenario()) == hash(Scenario())
        assert Scenario() != Scenario(depth=20)
        assert len({Scenario(), Scenario(), Scenario(n_units=8)}) == 2


class TestDerivedViews:
    def test_variant_maps_odenet3_row(self):
        assert Scenario(model="ODENet-3").variant == "ODENet"
        assert Scenario(model="ResNet").variant == "ResNet"

    def test_solver_stages(self):
        assert Scenario(solver="euler").solver_stages == 1
        assert Scenario(solver="rk4").solver_stages == 4

    def test_replace_revalidates(self):
        s = Scenario().replace(depth=20)
        assert s.depth == 20
        with pytest.raises(ValueError):
            Scenario().replace(n_units=0)

    def test_dict_round_trip(self):
        s = Scenario(model="Hybrid-3", depth=44, n_units=8, solver="rk4")
        assert Scenario.from_dict(s.as_dict()) == s

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown scenario fields"):
            Scenario.from_dict({"model": "ResNet", "voltage": 1.0})


class TestGrid:
    def test_default_grid_covers_table5(self):
        grid = scenario_grid()
        assert len(grid) == len(TABLE5_MODELS) * len(SUPPORTED_DEPTHS)

    def test_grid_order_is_deterministic(self):
        grid = scenario_grid(models=("ResNet", "rODENet-3"), depths=(20, 56), n_units=(8, 16))
        assert [s.full_name for s in grid[:4]] == ["ResNet-20"] * 2 + ["ResNet-56"] * 2
        assert [s.n_units for s in grid[:4]] == [8, 16, 8, 16]
        assert grid == scenario_grid(
            models=("ResNet", "rODENet-3"), depths=(20, 56), n_units=(8, 16)
        )

    def test_grid_maps_conventional_fraction_bits(self):
        grid = scenario_grid(models=("rODENet-3",), depths=(56,), word_lengths=(32, 16, 8))
        assert [(s.word_length, s.fraction_bits) for s in grid] == [
            (32, DEFAULT_FRACTION_BITS[32]),
            (16, DEFAULT_FRACTION_BITS[16]),
            (8, DEFAULT_FRACTION_BITS[8]),
        ]

    def test_grid_rejects_unconventional_wordlength_without_fraction(self):
        with pytest.raises(ValueError, match="fraction"):
            scenario_grid(word_lengths=(24,))
        assert scenario_grid(
            models=("rODENet-3",), depths=(56,), word_lengths=(24,), fraction_bits=12
        )[0].fraction_bits == 12

    def test_scenario_models_superset(self):
        assert set(TABLE5_MODELS) <= set(SCENARIO_MODELS)

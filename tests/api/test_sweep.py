"""Design-space sweep engine: determinism, parallel fan-out, serialisation."""

from __future__ import annotations

import json

import pytest

from repro.api import (
    Evaluator,
    Scenario,
    SweepError,
    results_to_csv,
    results_to_json,
    results_to_records,
    scenario_grid,
    sweep,
)

GRID = dict(models=("rODENet-3", "Hybrid-3"), depths=(20, 56), n_units=(8, 16))


def test_sweep_returns_results_in_input_order():
    scenarios = scenario_grid(**GRID)
    results = sweep(scenarios)
    assert [r.scenario for r in results] == scenarios


def test_sweep_workers_1_vs_4_identical():
    scenarios = scenario_grid(**GRID)
    serial = sweep(scenarios, evaluator=Evaluator(), workers=1)
    parallel = sweep(scenarios, evaluator=Evaluator(), workers=4)
    assert [r.as_dict() for r in serial] == [r.as_dict() for r in parallel]


def test_sweep_memoizes_duplicates():
    ev = Evaluator()
    results = sweep([Scenario(), Scenario(), Scenario()], evaluator=ev, workers=2)
    assert ev.cached_result_count == 1
    assert results[0] is results[1] is results[2]


def test_sweep_rejects_bad_workers():
    with pytest.raises(ValueError, match="workers"):
        sweep([Scenario()], workers=0)


class _ExplodingEvaluator(Evaluator):
    """Fails on one specific design point (to simulate a worker crash)."""

    def __init__(self, poison: Scenario) -> None:
        super().__init__()
        self._poison = poison

    def evaluate(self, scenario: Scenario):
        if scenario == self._poison:
            raise RuntimeError("boom")
        return super().evaluate(scenario)


def test_sweep_error_names_the_failing_scenario():
    scenarios = scenario_grid(**GRID)
    poison = scenarios[2]
    with pytest.raises(SweepError, match=poison.full_name) as excinfo:
        sweep(scenarios, evaluator=_ExplodingEvaluator(poison))
    assert excinfo.value.scenario == poison
    assert isinstance(excinfo.value.__cause__, RuntimeError)
    # The message carries the full design point, not just the name.
    assert f"'n_units': {poison.n_units}" in str(excinfo.value)
    # ... and the position in the grid, for resuming/bisecting long sweeps.
    assert excinfo.value.index == 2
    assert "scenario #2" in str(excinfo.value)


def test_sweep_error_surfaces_from_worker_threads():
    scenarios = scenario_grid(**GRID)
    poison = scenarios[-1]
    with pytest.raises(SweepError, match=poison.full_name) as excinfo:
        sweep(scenarios, evaluator=_ExplodingEvaluator(poison), workers=4)
    assert excinfo.value.index == len(scenarios) - 1


def test_sweep_error_pickles_with_index():
    import pickle

    err = SweepError(Scenario(), RuntimeError("boom"), index=7)
    clone = pickle.loads(pickle.dumps(err))
    assert clone.index == 7
    assert clone.scenario == err.scenario
    assert "scenario #7" in str(clone)


def test_csv_output_one_row_per_scenario():
    results = sweep(scenario_grid(**GRID))
    text = results_to_csv(results)
    lines = text.splitlines()
    assert len(lines) == 1 + len(results)
    header = lines[0].split(",")
    for column in ("model", "depth", "n_units", "bram", "dsp",
                   "total_w_pl_s", "overall_speedup", "energy_ratio"):
        assert column in header
    for line in lines[1:]:
        assert len(line.split(",")) == len(header)


def test_csv_empty_results():
    assert results_to_csv([]) == ""


def test_json_output_parses():
    results = sweep(scenario_grid(models=("rODENet-3",), depths=(56,)))
    data = json.loads(results_to_json(results))
    assert len(data) == 1
    assert data[0]["scenario"]["model"] == "rODENet-3"


def test_records_are_flat():
    records = results_to_records(sweep(scenario_grid(models=("rODENet-3",), depths=(56,))))
    assert all(not isinstance(v, (dict, list)) for v in records[0].values())

"""The board axis: scenario validation, grid, batch==loop, PYNQ-Z2 goldens."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import Evaluator, Scenario, scenario_grid, sweep, sweep_batch
from repro.platform import PYNQ_Z2, get_board, list_boards

ALL_BOARDS = list_boards()


class TestScenarioBoardKnob:
    @pytest.mark.parametrize("name", ALL_BOARDS)
    def test_every_registered_board_is_a_valid_scenario(self, name):
        s = Scenario(board=name)
        assert s.board_spec is get_board(name)
        assert s.pl_clock_hz == get_board(name).pl_clock_hz

    def test_unknown_board_raises_with_the_registered_list(self):
        # Satellite: mirror BramPlan.region()'s style — name the miss, list
        # what exists.
        with pytest.raises(ValueError) as err:
            Scenario(board="DE10-Nano")
        message = str(err.value)
        assert "unknown board 'DE10-Nano'" in message
        for name in ALL_BOARDS:
            assert name in message

    def test_pl_clock_override_still_works_per_board(self):
        s = Scenario(board="ZCU104", pl_clock_hz=150e6)
        assert s.board_spec.pl_clock_hz == 150e6
        assert s.board_spec.fpga is get_board("ZCU104").fpga

    def test_replace_board_rederives_a_defaulted_pl_clock(self):
        # Regression: replace(board=...) must not freeze the old board's
        # resolved clock into the copy (the cross-board sim comparison
        # depends on this).
        swapped = Scenario().replace(board="ZCU104")
        assert swapped.pl_clock_hz == get_board("ZCU104").pl_clock_hz

    def test_replace_board_keeps_an_explicit_pl_clock_override(self):
        swapped = Scenario(pl_clock_hz=50e6).replace(board="ZCU104")
        assert swapped.pl_clock_hz == 50e6

    def test_replace_board_with_explicit_clock_change(self):
        swapped = Scenario().replace(board="ZCU104", pl_clock_hz=75e6)
        assert swapped.pl_clock_hz == 75e6


class TestScenarioGridBoards:
    def test_boards_axis_is_innermost(self):
        grid = scenario_grid(
            models=("rODENet-3",), depths=(56,), n_units=(8, 16),
            boards=("PYNQ-Z2", "ZCU104"),
        )
        assert [(s.n_units, s.board) for s in grid] == [
            (8, "PYNQ-Z2"), (8, "ZCU104"), (16, "PYNQ-Z2"), (16, "ZCU104"),
        ]

    def test_boards_axis_conflicts_with_fixed_board(self):
        with pytest.raises(ValueError, match="boards"):
            scenario_grid(boards=("PYNQ-Z2",), board="PYNQ-Z2")

    def test_fixed_board_still_flows_through_common(self):
        grid = scenario_grid(models=("ResNet",), depths=(20,), board="Ultra96-V2")
        assert all(s.board == "Ultra96-V2" for s in grid)

    def test_default_grid_is_unchanged(self):
        assert scenario_grid(models=("rODENet-3",), depths=(20, 56)) == scenario_grid(
            models=("rODENet-3",), depths=(20, 56), boards=None
        )
        assert all(s.board == "PYNQ-Z2" for s in scenario_grid(models=("ResNet",)))


class TestCrossBoardConformance:
    """Satellite: batch engine vs scalar Evaluator, field-for-field."""

    def test_batch_equals_loop_over_a_multi_board_grid(self):
        grid = scenario_grid(
            models=("ResNet", "rODENet-1+2", "rODENet-3", "Hybrid-3"),
            depths=(20, 44, 56),
            n_units=(4, 16, 32),
            word_lengths=(32, 16),
            solvers=("euler", "rk4"),
            boards=ALL_BOARDS,
        )
        assert len(grid) >= 4 * len(ALL_BOARDS)
        loop = sweep(grid, Evaluator())
        batch = sweep_batch(grid)
        assert batch.to_results() == loop  # exact Result equality, every field

    def test_random_board_mix_equals_loop(self):
        rng = np.random.default_rng(7)
        grid = [
            Scenario(
                model="rODENet-3",
                depth=int(rng.choice([20, 32, 44, 56])),
                n_units=int(rng.choice([1, 8, 16, 64])),
                board=str(rng.choice(ALL_BOARDS)),
                pl_clock_hz=float(rng.choice([50e6, 100e6, 142e6, 200e6])),
                solver=str(rng.choice(["euler", "rk4"])),
            )
            for _ in range(60)
        ]
        loop = sweep(grid, Evaluator())
        batch = sweep_batch(grid)
        assert batch.to_results() == loop

    def test_all_boards_take_the_vector_path(self):
        from repro.api.batch import _vectorizable

        for name in ALL_BOARDS:
            assert _vectorizable(Scenario(board=name))


class TestCrossBoardPhysics:
    """The board axis must produce *ordered* physics, not just numbers."""

    def test_faster_ps_clock_means_faster_software(self):
        ev = Evaluator()
        by_board = {
            name: ev.evaluate(Scenario(model="ResNet", depth=56, board=name))
            for name in ALL_BOARDS
        }
        clocks = {name: get_board(name).ps_clock_hz for name in ALL_BOARDS}
        times = {name: r.timing["total_wo_pl_s"] for name, r in by_board.items()}
        ranked_by_clock = sorted(ALL_BOARDS, key=lambda n: -clocks[n])
        ranked_by_time = sorted(ALL_BOARDS, key=lambda n: times[n])
        assert ranked_by_clock == ranked_by_time

    def test_bigger_fabric_fits_more(self):
        ev = Evaluator()
        # conv_x64 of layer3_2 overflows the XC7Z020 but not the ZU7EV.
        small = ev.evaluate(Scenario(n_units=64, board="PYNQ-Z2"))
        large = ev.evaluate(Scenario(n_units=64, board="ZCU104"))
        assert not small.resources["fits_device"]
        assert large.resources["fits_device"]
        assert large.resources["bram_pct"] < small.resources["bram_pct"]

    def test_accuracy_sweep_honors_the_board(self):
        # Regression: the Q-format frontier must price compute *and* DMA at
        # the board's PL clock and close timing with the board's fabric
        # scale (it used to mix the reference 100 MHz into both).
        from repro.api import accuracy_sweep

        kwargs = dict(formats=[(16, 8)], n_units=(16,), images=1)
        pynq = accuracy_sweep("layer3_2", **kwargs).points[0]
        zcu = accuracy_sweep("layer3_2", board=get_board("ZCU104"), **kwargs).points[0]
        assert zcu.transfer_s == pytest.approx(pynq.transfer_s / 2.0)  # 200 MHz DMA
        assert zcu.latency_s < pynq.latency_s
        assert zcu.meets_timing  # 0.5 fabric scale: 4.9 ns inside the 5 ns period
        assert zcu.fmax_mhz > pynq.fmax_mhz

    def test_pareto_fronts_grouped_by_board(self):
        grid = scenario_grid(
            models=("rODENet-3",), depths=(20, 56), n_units=(4, 8, 16),
            boards=ALL_BOARDS,
        )
        table = sweep_batch(grid)
        fronts = table.pareto_fronts("total_w_pl_s", "energy_with_pl_J")
        assert set(fronts) == set(ALL_BOARDS)
        for name, front in fronts.items():
            assert 1 <= len(front) <= len(grid) // len(ALL_BOARDS)
            assert all(s.board == name for s in front.scenarios)


#: The seed repository's default-scenario result, captured before the
#: platform refactor (rODENet-3-56, conv_x16, Q20, Euler, PYNQ-Z2).  Byte
#: identity here means every golden CLI capture stays byte-identical too.
PYNQ_GOLDEN = {
    "param_count": 156276,
    "param_bytes": 625104,
    "bram": 85.0,
    "dsp": 68.0,
    "lut": 10228.8,
    "ff": 4834.4,
    "bram_pct": 60.714285714285715,
    "total_wo_pl_s": 1.5485299593846151,
    "total_w_pl_s": 0.582851958153846,
    "overall_speedup": 2.656815230216443,
    "speedup_vs_resnet": 2.7453835233391666,
    "energy_without_pl_J": 2.0130889471999995,
    "energy_with_pl_J": 0.5438663264393845,
    "energy_ratio": 3.7014406837419163,
    "train_step_sw_s": 4.635751404307691,
    "train_step_offloaded_s": 1.7387174006153845,
    "epoch_hours_software": 64.38543617094015,
    "full_run_days_offloaded": 201.24043988603987,
}


class TestPynqGoldenRegression:
    """Satellite: the reference board's numbers are pinned bit-for-bit."""

    def test_default_scenario_matches_the_seed_exactly(self):
        flat = Evaluator().evaluate(Scenario()).flat_dict()
        for key, expected in PYNQ_GOLDEN.items():
            assert flat[key] == expected, f"{key}: {flat[key]!r} != {expected!r}"

    def test_batch_engine_matches_the_seed_exactly(self):
        table = sweep_batch([Scenario()])
        record = table.records()[0]
        for key, expected in PYNQ_GOLDEN.items():
            assert record[key] == expected, f"{key}: {record[key]!r} != {expected!r}"

"""End-to-end iverilog conformance (skips cleanly without the toolchain)."""

from pathlib import Path

import pytest

from repro.fixedpoint import QFormat
from repro.fpga.geometry import BlockGeometry
from repro.rtl import (
    GOLDEN_CASES,
    emit_odeblock,
    emit_testbench,
    generate_vectors,
    golden_vectors,
    iverilog_available,
    random_block_weights,
    run_conformance,
    write_vector_files,
)

pytestmark = pytest.mark.skipif(
    not iverilog_available(), reason="iverilog/vvp not on PATH"
)

TINY = BlockGeometry(name="tiny", in_channels=4, out_channels=4, height=4, width=4)


def _prepare(tmp_path, geometry, weights, qformat, vectors, n_units, time_concat=False):
    bundle = emit_odeblock(
        geometry, weights, qformat=qformat, n_units=n_units, time_concat=time_concat
    )
    bundle.write(tmp_path)
    write_vector_files(vectors, tmp_path)
    tb = emit_testbench(bundle, len(vectors.records), "stimulus.hex", "expected.hex")
    (tmp_path / "tb_odeblock.v").write_text(tb)
    return bundle


@pytest.mark.parametrize("word,frac", [(16, 8), (12, 6), (8, 4)])
def test_simulated_outputs_bit_identical_to_fxarray(tmp_path, word, frac):
    qf = QFormat(word, frac)
    weights = random_block_weights(TINY, seed=21, scale=0.5)
    vec = generate_vectors(
        TINY, weights, qformat=qf, images=2, iterations=2, seed=13, input_scale=0.6
    )
    _prepare(tmp_path, TINY, weights, qf, vec, n_units=2)
    result = run_conformance(tmp_path)
    assert result.available
    assert result.passed, result.stdout
    assert result.vectors == len(vec.records)
    assert result.words == len(vec.records) * vec.words_per_map


@pytest.mark.parametrize("name", sorted(GOLDEN_CASES))
def test_golden_saturation_cases_conform(tmp_path, name):
    case, vec, weights = golden_vectors(name)
    _prepare(tmp_path, case.geometry, weights, case.qformat, vec, n_units=2)
    result = run_conformance(tmp_path)
    assert result.passed, result.stdout


def test_time_concat_design_conforms(tmp_path):
    qf = QFormat(16, 8)
    weights = random_block_weights(TINY, time_concat=True, seed=5, scale=0.5)
    vec = generate_vectors(
        TINY, weights, qformat=qf, images=1, iterations=3, seed=8, time_concat=True
    )
    _prepare(tmp_path, TINY, weights, qf, vec, n_units=4, time_concat=True)
    result = run_conformance(tmp_path)
    assert result.passed, result.stdout


def test_idle_pe_design_conforms(tmp_path):
    # More units than channels: idle PEs must not corrupt the datapath.
    qf = QFormat(16, 8)
    weights = random_block_weights(TINY, seed=6, scale=0.5)
    vec = generate_vectors(TINY, weights, qformat=qf, images=1, iterations=1, seed=3)
    _prepare(tmp_path, TINY, weights, qf, vec, n_units=8)
    result = run_conformance(tmp_path)
    assert result.passed, result.stdout


def test_tampered_expected_vector_fails(tmp_path):
    # Sanity check that the testbench actually compares: flip one expected
    # word and the run must FAIL.
    qf = QFormat(16, 8)
    weights = random_block_weights(TINY, seed=21, scale=0.5)
    vec = generate_vectors(TINY, weights, qformat=qf, images=1, iterations=1, seed=13)
    _prepare(tmp_path, TINY, weights, qf, vec, n_units=2)
    exp = tmp_path / "expected.hex"
    lines = exp.read_text().strip().splitlines()
    lines[0] = format((int(lines[0], 16) ^ 0x1), "04x")
    exp.write_text("\n".join(lines) + "\n")
    result = run_conformance(tmp_path)
    assert result.available and not result.passed
    assert result.mismatches >= 1

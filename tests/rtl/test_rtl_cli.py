"""The ``rtl`` CLI subcommand and ``repro.api.export_rtl``."""

import json

import pytest

from repro.api import export_rtl
from repro.cli import main


def test_cli_emit_and_check(tmp_path, capsys):
    out = tmp_path / "bundle"
    rc = main(
        [
            "rtl", "--block", "layer1", "--qformat", "16:8", "--n-units", "4",
            "--out", str(out), "--vectors", "1", "--iterations", "1", "--check",
        ]
    )
    assert rc == 0
    text = capsys.readouterr().out
    assert "check     ok" in text
    assert (out / "odeblock_top.v").is_file()
    assert (out / "rtl_manifest.json").is_file()
    assert (out / "stimulus.hex").is_file()
    assert (out / "tb_odeblock.v").is_file()


def test_cli_json_schema(tmp_path, capsys):
    rc = main(
        [
            "rtl", "--block", "layer1", "--qformat", "16:8", "--n-units", "2",
            "--out", str(tmp_path / "b"), "--vectors", "1", "--iterations", "1",
            "--check", "--json",
        ]
    )
    assert rc == 0
    data = json.loads(capsys.readouterr().out)
    for key in ("block", "qformat", "n_units", "files", "resources", "check", "vectors"):
        assert key in data, key
    assert data["check"]["ok"] is True
    assert data["qformat"] == {"word_length": 16, "fraction_bits": 8}
    assert data["vectors"]["records"] == 1


def test_cli_simulate_skips_cleanly_without_iverilog(tmp_path, capsys, monkeypatch):
    import repro.api.rtl as api_rtl

    monkeypatch.setattr(api_rtl, "iverilog_available", lambda: False)
    rc = main(
        [
            "rtl", "--block", "layer1", "--qformat", "16:8", "--n-units", "2",
            "--out", str(tmp_path / "b"), "--vectors", "1", "--iterations", "1",
            "--simulate", "--json",
        ]
    )
    assert rc == 0
    data = json.loads(capsys.readouterr().out)
    assert data["simulation"]["skipped"] is True


def test_cli_bad_qformat_is_exit_2(tmp_path, capsys):
    rc = main(["rtl", "--qformat", "banana", "--out", str(tmp_path / "b")])
    assert rc == 2


def test_cli_simulate_without_vectors_is_exit_2(tmp_path, capsys):
    rc = main(["rtl", "--out", str(tmp_path / "b"), "--simulate"])
    assert rc == 2


def test_cli_unknown_board_is_exit_2(tmp_path, capsys):
    rc = main(["rtl", "--board", "nonexistent", "--out", str(tmp_path / "b")])
    assert rc == 2
    assert "available boards" in capsys.readouterr().err


def test_export_rtl_board_name_is_case_insensitive(tmp_path):
    a = export_rtl(tmp_path / "a", block="layer1", board="pynq-z2",
                   qformat=(16, 8), n_units=2, check=False)
    b = export_rtl(tmp_path / "b", block="layer1", board="PYNQ_Z2",
                   qformat=(16, 8), n_units=2, check=False)
    assert a["board"] == b["board"] == {"name": "PYNQ-Z2", "pl_clock_hz": 100000000}


def test_export_rtl_simulate_requires_vectors(tmp_path):
    with pytest.raises(ValueError, match="vectors"):
        export_rtl(tmp_path / "x", block="layer1", qformat=(16, 8),
                   n_units=2, vectors=0, simulate=True)

"""Committed golden vectors: regenerable bit-for-bit, saturation-heavy."""

from pathlib import Path

import numpy as np
import pytest

from repro.rtl import GOLDEN_CASES, VectorSet, golden_vectors

GOLDEN_ROOT = Path(__file__).parent / "goldens"


@pytest.mark.parametrize("name", sorted(GOLDEN_CASES))
def test_golden_files_are_byte_identical_to_regeneration(name):
    case, vec, _ = golden_vectors(name)
    out = GOLDEN_ROOT / name
    assert (out / "stimulus.hex").read_text() == vec.stimulus_hex()
    assert (out / "expected.hex").read_text() == vec.expected_hex()
    assert (out / "vectors.bin").read_bytes() == vec.to_bytes()


@pytest.mark.parametrize("name", sorted(GOLDEN_CASES))
def test_golden_binary_parses_back(name):
    data = (GOLDEN_ROOT / name / "vectors.bin").read_bytes()
    vec = VectorSet.from_bytes(data)
    case = GOLDEN_CASES[name]
    assert vec.qformat == case.qformat
    assert len(vec.records) == case.images * case.iterations


@pytest.mark.parametrize("name", sorted(GOLDEN_CASES))
def test_goldens_are_saturation_heavy(name):
    # The whole point of the Q4/Q6 cases: a large fraction of the output
    # words must sit on the saturation rails.
    case, vec, _ = golden_vectors(name)
    qf = case.qformat
    expected = np.concatenate([rec.expected for rec in vec.records])
    on_rail = np.isin(expected, (qf.min_int, qf.max_int)).mean()
    assert on_rail > 0.25, f"{name}: only {on_rail:.1%} of words saturate"


def test_regeneration_is_stable_across_calls():
    a = golden_vectors("q4_2_saturation")[1].to_bytes()
    b = golden_vectors("q4_2_saturation")[1].to_bytes()
    assert a == b


def test_golden_hex_width_matches_word_length():
    for name, case in GOLDEN_CASES.items():
        digits = (case.word_length + 3) // 4
        lines = (GOLDEN_ROOT / name / "stimulus.hex").read_text().strip().splitlines()
        assert all(len(ln) == digits for ln in lines)

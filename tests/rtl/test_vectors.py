"""Vector generation: determinism, chain consistency, integer encoding."""

import numpy as np
import pytest

from repro.fixedpoint import QFormat
from repro.fpga.geometry import BlockGeometry
from repro.fpga.odeblock_hw import HardwareODEBlock
from repro.rtl import (
    VectorSet,
    generate_vectors,
    random_block_weights,
    write_vector_files,
)

TINY = BlockGeometry(name="tiny", in_channels=4, out_channels=4, height=4, width=4)
Q16 = QFormat(16, 8)


def _vectors(**kw):
    args = dict(qformat=Q16, images=2, iterations=3, seed=9, input_scale=0.5)
    args.update(kw)
    weights = random_block_weights(TINY, seed=4, scale=0.5)
    return generate_vectors(TINY, weights, **args)


def test_record_count_and_shapes():
    vec = _vectors()
    assert len(vec.records) == 2 * 3
    for rec in vec.records:
        assert rec.stimulus.shape == (vec.words_per_map,)
        assert rec.expected.shape == (vec.words_per_map,)


def test_generation_is_deterministic():
    a, b = _vectors(), _vectors()
    assert a.to_bytes() == b.to_bytes()
    assert a.stimulus_hex() == b.stimulus_hex()
    assert a.expected_hex() == b.expected_hex()


def test_chain_consistency_with_run_iterations_batch():
    # Record i's expected state is record i+images' stimulus, and the final
    # expected state equals what run_iterations_batch produces end-to-end.
    weights = random_block_weights(TINY, seed=4, scale=0.5)
    vec = generate_vectors(
        TINY, weights, qformat=Q16, images=2, iterations=3, seed=9, input_scale=0.5
    )
    for i in range(len(vec.records) - 2):
        np.testing.assert_array_equal(vec.records[i].expected, vec.records[i + 2].stimulus)

    hw = HardwareODEBlock(TINY, weights, n_units=4, qformat=Q16)
    rng = np.random.default_rng(9)
    state = rng.normal(0.0, 0.5, size=(2, 4, 4, 4))
    final, _, _ = hw.run_iterations_batch(state, iterations=3, step_size=1.0)
    final_raw = Q16.to_fixed(final)
    np.testing.assert_array_equal(vec.records[-2].expected, final_raw[0].ravel())
    np.testing.assert_array_equal(vec.records[-1].expected, final_raw[1].ravel())


def test_n_units_does_not_change_vectors():
    assert _vectors(n_units=1).to_bytes() == _vectors(n_units=8).to_bytes()


def test_hex_encoding_is_twos_complement():
    vec = _vectors()
    lines = vec.stimulus_hex().strip().splitlines()
    # 16-bit words -> 4 hex digits, negatives wrap into the upper half.
    assert all(len(ln) == 4 for ln in lines)
    rec_pos, neg = next(
        (i, rec) for i, rec in enumerate(vec.records) if (rec.stimulus < 0).any()
    )
    idx = int(np.argmax(neg.stimulus < 0))
    value = int(neg.stimulus[idx])
    line = lines[rec_pos * (vec.words_per_map + 1) + idx]
    assert int(line, 16) == value + (1 << 16)


def test_binary_round_trip_is_bit_exact():
    vec = _vectors()
    back = VectorSet.from_bytes(vec.to_bytes())
    assert back.qformat == vec.qformat
    assert len(back.records) == len(vec.records)
    for a, b in zip(vec.records, back.records):
        assert a.t_fx == b.t_fx
        np.testing.assert_array_equal(a.stimulus, b.stimulus)
        np.testing.assert_array_equal(a.expected, b.expected)


def test_binary_header_is_little_endian_and_int_only():
    data = _vectors().to_bytes()
    assert data[:4] == b"ODEV"
    # word_length 16 at offset 6, little-endian.
    assert data[6] == 16 and data[7] == 0


def test_from_bytes_rejects_bad_magic_and_version():
    data = bytearray(_vectors().to_bytes())
    bad = b"XXXX" + bytes(data[4:])
    with pytest.raises(ValueError, match="magic"):
        VectorSet.from_bytes(bad)
    data[4] = 99
    with pytest.raises(ValueError, match="version"):
        VectorSet.from_bytes(bytes(data))


def test_t_fx_advances_with_iterations():
    vec = _vectors(iterations=3)
    t_values = [rec.t_fx for rec in vec.records]
    # images=2 -> t repeats per pair, then advances by h=1.0 (256 in Q16.8).
    assert t_values == [0, 0, 256, 256, 512, 512]


def test_write_vector_files(tmp_path):
    vec = _vectors()
    paths = write_vector_files(vec, tmp_path)
    assert set(paths) == {"stimulus.hex", "expected.hex", "vectors.json"}
    assert paths["stimulus.hex"].read_text() == vec.stimulus_hex()
    # JSON manifest is deterministic (sorted keys).
    assert paths["vectors.json"].read_text().startswith("{\n  \"channels\"")

"""Adversarial fixtures: every tamper produces its own named failure."""

import json

import pytest

from repro.fixedpoint import QFormat
from repro.fpga.geometry import BlockGeometry
from repro.rtl import (
    InstanceCountError,
    ManifestError,
    PortWidthError,
    RomDepthError,
    StructuralCheckError,
    check_bundle,
    emit_odeblock,
)

TINY = BlockGeometry(name="tiny", in_channels=4, out_channels=4, height=4, width=4)
Q16 = QFormat(16, 8)


@pytest.fixture()
def bundle_dir(tmp_path):
    emit_odeblock(TINY, qformat=Q16, n_units=2, seed=3).write(tmp_path)
    return tmp_path


def test_pristine_bundle_passes(bundle_dir):
    report = check_bundle(bundle_dir)
    assert report["ok"]
    assert [c["check"] for c in report["checks"]] == [
        "files_present",
        "port_widths",
        "rom_depths",
        "instance_counts",
    ]


def test_missing_manifest_is_manifest_error(tmp_path):
    with pytest.raises(ManifestError, match="rtl_manifest.json"):
        check_bundle(tmp_path)


def test_corrupt_manifest_is_manifest_error(bundle_dir):
    (bundle_dir / "rtl_manifest.json").write_text("{not json")
    with pytest.raises(ManifestError, match="not valid JSON"):
        check_bundle(bundle_dir)


def test_missing_listed_file_is_manifest_error(bundle_dir):
    (bundle_dir / "conv_pe.v").unlink()
    with pytest.raises(ManifestError, match="conv_pe.v"):
        check_bundle(bundle_dir)


def test_wrong_manifest_version_is_manifest_error(bundle_dir):
    manifest = json.loads((bundle_dir / "rtl_manifest.json").read_text())
    manifest["version"] = 99
    (bundle_dir / "rtl_manifest.json").write_text(json.dumps(manifest))
    with pytest.raises(ManifestError, match="version 99"):
        check_bundle(bundle_dir)


def test_wrong_port_width_is_port_width_error(bundle_dir):
    top = bundle_dir / "odeblock_top.v"
    # Widen in_data from 16 to 32 bits: [15:0] -> [31:0].
    top.write_text(
        top.read_text().replace("input signed [15:0] in_data", "input signed [31:0] in_data")
    )
    with pytest.raises(PortWidthError, match="in_data.*32 bits.*expected.*16"):
        check_bundle(bundle_dir)


def test_missing_port_is_port_width_error(bundle_dir):
    top = bundle_dir / "odeblock_top.v"
    top.write_text(top.read_text().replace("input signed [15:0] t_fx", "input signed t_fx"))
    with pytest.raises(PortWidthError, match="t_fx"):
        check_bundle(bundle_dir)


def test_truncated_rom_init_is_rom_depth_error(bundle_dir):
    hex_path = bundle_dir / "wbank_0.hex"
    lines = hex_path.read_text().strip().splitlines()
    hex_path.write_text("\n".join(lines[:-5]) + "\n")
    with pytest.raises(RomDepthError, match="wbank_0.hex.*truncated"):
        check_bundle(bundle_dir)


def test_wrong_word_width_in_rom_is_rom_depth_error(bundle_dir):
    hex_path = bundle_dir / "bn_params.hex"
    lines = hex_path.read_text().strip().splitlines()
    lines[0] = lines[0] + "ff"  # 4 -> 6 hex digits
    hex_path.write_text("\n".join(lines) + "\n")
    with pytest.raises(RomDepthError, match="width"):
        check_bundle(bundle_dir)


def test_rom_depth_parameter_mismatch_is_rom_depth_error(bundle_dir):
    top = bundle_dir / "odeblock_top.v"
    manifest = json.loads((bundle_dir / "rtl_manifest.json").read_text())
    words = manifest["roms"]["wbank_0.hex"]["words"]
    top.write_text(top.read_text().replace(f".DEPTH({words})", f".DEPTH({words - 1})", 1))
    with pytest.raises(RomDepthError, match="DEPTH"):
        check_bundle(bundle_dir)


def test_missing_pe_instance_is_instance_count_error(bundle_dir):
    top = bundle_dir / "odeblock_top.v"
    text = top.read_text()
    # Drop PE 1 entirely: everything from its bank ROM to the end of its
    # conv_pe instantiation.
    start = text.index("weight_rom #(.WORD(16), .DEPTH")
    start = text.index("weight_rom #(.WORD(16), .DEPTH", start + 1)  # second bank
    end = text.index(");", text.index("conv_pe #(", start)) + 2
    top.write_text(text[:start] + text[end:])
    with pytest.raises(InstanceCountError, match="conv_pe"):
        check_bundle(bundle_dir)


def test_extra_bn_unit_is_instance_count_error(bundle_dir):
    top = bundle_dir / "odeblock_top.v"
    text = top.read_text()
    # A second bn_unit instantiation header is enough to trip the count.
    top.write_text(text + "\n// duplicated\n// bn_unit #(.WORD(16))\nbn_unit #( );\n")
    with pytest.raises(InstanceCountError, match="bn_unit"):
        check_bundle(bundle_dir)


def test_n_units_manifest_drift_is_instance_count_error(bundle_dir):
    manifest = json.loads((bundle_dir / "rtl_manifest.json").read_text())
    manifest["n_units"] = 3
    (bundle_dir / "rtl_manifest.json").write_text(json.dumps(manifest))
    with pytest.raises(InstanceCountError, match="n_units is 3"):
        check_bundle(bundle_dir)


def test_all_errors_are_structural_check_errors():
    for exc in (ManifestError, PortWidthError, RomDepthError, InstanceCountError):
        assert issubclass(exc, StructuralCheckError)
        assert issubclass(exc, ValueError)  # CLI maps them to exit code 2

"""RTL emission: bundle contents, manifest schema, model consistency."""

import json

import numpy as np
import pytest

from repro.fixedpoint import Q20, QFormat
from repro.fpga.bram import plan_block_allocation
from repro.fpga.geometry import OFFLOADABLE_BLOCKS, BlockGeometry, block_geometry
from repro.fpga.resources import ResourceEstimator
from repro.platform import PYNQ_Z2, get_board
from repro.rtl import (
    BN_ROM_FILE,
    MANIFEST_FILE,
    SOURCE_FILES,
    TOP_FILE,
    check_bundle,
    default_n_units,
    emit_odeblock,
    emit_testbench,
    random_block_weights,
)

TINY = BlockGeometry(name="tiny", in_channels=4, out_channels=4, height=4, width=4)
Q16 = QFormat(16, 8)


def test_bundle_contains_all_sources_and_roms():
    bundle = emit_odeblock(TINY, qformat=Q16, n_units=2)
    for name in SOURCE_FILES:
        assert name in bundle.files
    assert MANIFEST_FILE in bundle.files
    assert BN_ROM_FILE in bundle.files
    assert "wbank_0.hex" in bundle.files and "wbank_1.hex" in bundle.files


def test_manifest_schema_and_consistency():
    bundle = emit_odeblock(TINY, qformat=Q16, n_units=2)
    m = json.loads(bundle.files[MANIFEST_FILE])
    for key in (
        "generator", "version", "block", "qformat", "board", "n_units", "n_banks",
        "roms", "sources", "top", "resources", "bram_plan", "cycle_guess", "not_emitted",
    ):
        assert key in m, key
    assert m["qformat"] == {"word_length": 16, "fraction_bits": 8}
    assert m["n_units"] == 2
    assert m["top"] == TOP_FILE
    # The deliberately-not-emitted list is recorded in the artifact itself.
    assert "axi_dma_frontend" in m["not_emitted"]
    assert "replica_scheduling_fsm" in m["not_emitted"]


def test_rom_words_match_weight_image_exactly():
    # ROM hex contents must equal the quantised export image words, not a
    # re-quantisation of the float weights.
    weights = random_block_weights(TINY, seed=11, scale=0.5)
    bundle = emit_odeblock(TINY, weights, qformat=Q16, n_units=1)
    raw1 = Q16.to_fixed(weights.conv1_weight)
    lines = bundle.files["wbank_0.hex"].strip().splitlines()
    conv1_words = [int(ln, 16) - (1 << 16 if int(ln, 16) >= 1 << 15 else 0) for ln in lines]
    np.testing.assert_array_equal(
        np.asarray(conv1_words[: raw1.size]), raw1.ravel()
    )


def test_port_widths_track_qformat():
    for qf in (QFormat(8, 4), Q16, Q20):
        bundle = emit_odeblock(TINY, qformat=qf, n_units=1)
        top = bundle.files[TOP_FILE]
        assert f"input signed [{qf.word_length - 1}:0] in_data" in top
        assert f"input signed [{qf.word_length - 1}:0] t_fx" in top
        assert f"output reg signed [{qf.word_length - 1}:0] out_data" in top


def test_pe_instances_match_unit_count():
    for n in (1, 2, 4, 8):
        bundle = emit_odeblock(TINY, qformat=Q16, n_units=n)
        assert bundle.files[TOP_FILE].count("conv_pe #(") == n


def test_idle_pes_emitted_when_units_exceed_channels():
    bundle = emit_odeblock(TINY, qformat=Q16, n_units=8)
    top = bundle.files[TOP_FILE]
    assert top.count("conv_pe #(") == 8
    # Only 4 channels -> only 4 weight banks (+1 BN ROM).
    assert top.count("weight_rom #(") == 5
    assert ".N_CH(0)" in top


def test_bank_count_matches_bram_plan():
    for n in (1, 2, 3, 4, 8):
        bundle = emit_odeblock(TINY, qformat=Q16, n_units=n)
        plan = plan_block_allocation(TINY, n_units=n, qformat=Q16)
        expected_banks = plan.region("conv1_weights").banks
        assert bundle.manifest["n_banks"] == expected_banks


def test_dsp_model_agrees_with_instance_count():
    bundle = emit_odeblock(TINY, qformat=Q16, n_units=4)
    est = ResourceEstimator(PYNQ_Z2.fpga, Q16).estimate(TINY, n_units=4)
    assert (int(est.resources.dsp) - 4) // 4 == 4
    assert bundle.manifest["resources"]["dsp"] == int(est.resources.dsp)


def test_default_n_units_is_board_derived():
    n = default_n_units(PYNQ_Z2)
    assert n >= 1
    est = ResourceEstimator(PYNQ_Z2.fpga, Q20).estimate(block_geometry("layer3_2"), n_units=n)
    assert est.fits(PYNQ_Z2.fpga)
    # A board with a bigger FPGA can host at least as many units.
    zcu104 = get_board("ZCU104")
    assert default_n_units(zcu104) >= n


@pytest.mark.parametrize("name", sorted(OFFLOADABLE_BLOCKS))
def test_every_offloadable_block_emits_and_checks(tmp_path, name):
    bundle = emit_odeblock(name, qformat=Q16, n_units=4)
    out = tmp_path / name
    bundle.write(out)
    assert check_bundle(out)["ok"]


def test_two_board_qformat_points_pass_structural_check(tmp_path):
    # The acceptance-criteria pair: two distinct (board, qformat) points.
    points = [("PYNQ-Z2", Q20), ("ZCU104", QFormat(16, 8))]
    for board_name, qf in points:
        board = get_board(board_name)
        bundle = emit_odeblock(TINY, qformat=qf, board=board, n_units=2)
        out = tmp_path / f"{board_name}_{qf.word_length}"
        bundle.write(out)
        report = check_bundle(out)
        assert report["ok"]
        assert bundle.manifest["board"]["name"] == board_name


def test_time_concat_adds_input_channel_words(tmp_path):
    w = random_block_weights(TINY, time_concat=True, seed=1)
    bundle = emit_odeblock(TINY, w, qformat=Q16, n_units=2, time_concat=True)
    c, k = TINY.out_channels, TINY.kernel
    total = sum(
        info["words"] for info in bundle.manifest["roms"].values()
        if info["kind"] == "conv_weights"
    )
    assert total == 2 * c * (c + 1) * k * k
    out = tmp_path / "tc"
    bundle.write(out)
    assert check_bundle(out)["ok"]


def test_testbench_references_vector_files():
    bundle = emit_odeblock(TINY, qformat=Q16, n_units=2)
    tb = emit_testbench(bundle, 6, "stimulus.hex", "expected.hex")
    assert '"stimulus.hex"' in tb and '"expected.hex"' in tb
    assert "CONFORMANCE" in tb


@pytest.mark.parametrize(
    "kwargs, match",
    [
        (dict(qformat=QFormat(48, 24)), "word lengths up to 32"),
        (dict(qformat=Q16, n_units=0), "n_units"),
    ],
)
def test_emit_rejects_unsupported_configs(kwargs, match):
    with pytest.raises(ValueError, match=match):
        emit_odeblock(TINY, **kwargs)


def test_emit_rejects_strided_blocks():
    strided = BlockGeometry(
        name="strided", in_channels=4, out_channels=4, height=4, width=4, stride=2
    )
    with pytest.raises(ValueError, match="stride"):
        emit_odeblock(strided, qformat=Q16, n_units=1)


def test_emit_rejects_weight_shape_mismatch():
    w = random_block_weights(TINY, time_concat=True, seed=0)  # 5 input channels
    with pytest.raises(ValueError, match="shape"):
        emit_odeblock(TINY, w, qformat=Q16, n_units=1, time_concat=False)


def test_write_is_idempotent_and_deterministic(tmp_path):
    a = emit_odeblock(TINY, qformat=Q16, n_units=2, seed=5)
    b = emit_odeblock(TINY, qformat=Q16, n_units=2, seed=5)
    assert a.files == b.files
    out = tmp_path / "x"
    first = {p.name: p.read_text() for p in a.write(out)}
    second = {p.name: p.read_text() for p in b.write(out)}
    assert first == second

"""Tests for the hardware/software co-execution runtime."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import build_network
from repro.hwsw import HwSwRuntime, Partition


@pytest.fixture(scope="module")
def small_model():
    """A reduced rODENet-3 model (ODEBlock on layer3_2) for fast execution."""

    model = build_network("rODENet-3", 20, num_classes=5, base_width=4, seed=3)
    model.eval()
    return model


@pytest.fixture(scope="module")
def batch():
    rng = np.random.default_rng(11)
    return rng.normal(0, 0.5, size=(2, 3, 16, 16))


class TestConstruction:
    def test_rejects_non_odeblock_layers(self, small_model):
        with pytest.raises(TypeError, match="not realised as an ODEBlock"):
            HwSwRuntime(small_model, Partition.offload("layer1"))

    def test_accepts_odeblock_layer(self, small_model):
        runtime = HwSwRuntime(small_model, Partition.offload("layer3_2"))
        assert runtime.partition.pl_layers == ("layer3_2",)


class TestPrediction:
    def test_logits_shape_and_report(self, small_model, batch):
        runtime = HwSwRuntime(small_model, Partition.offload("layer3_2"), n_units=16)
        logits, report = runtime.predict(batch)
        assert logits.shape == (2, 5)
        assert report.batch_size == 2
        # rODENet-3-20 executes layer3_2 six times per image.
        assert report.pl_invocations["layer3_2"] == 2 * 6
        assert report.pl_compute_seconds > 0
        assert report.pl_transfer_seconds > 0

    def test_software_only_partition_matches_model(self, small_model, batch):
        runtime = HwSwRuntime(small_model, Partition.software_only())
        logits, report = runtime.predict(batch)
        from repro.nn import Tensor, no_grad

        with no_grad():
            expected = small_model(Tensor(batch)).data
        np.testing.assert_allclose(logits, expected, rtol=1e-10)
        assert report.pl_invocations == {}

    def test_offloaded_prediction_close_to_software(self, small_model, batch):
        """Q20 quantisation must not change the prediction materially."""

        runtime = HwSwRuntime(small_model, Partition.offload("layer3_2"))
        fidelity = runtime.fidelity(batch)
        assert fidelity["top1_agreement"] == 1.0
        assert fidelity["max_logit_diff"] < 0.05

    def test_modeled_times_populated(self, small_model, batch):
        runtime = HwSwRuntime(small_model, Partition.offload("layer3_2"))
        _, report = runtime.predict(batch)
        assert report.modeled_total_without_pl > report.modeled_total_with_pl > 0
        assert report.modeled_speedup > 1.0

    def test_hardware_block_created_lazily_with_observed_shape(self, small_model, batch):
        runtime = HwSwRuntime(small_model, Partition.offload("layer3_2"))
        assert runtime.hardware_blocks == {}
        runtime.predict(batch)
        geom = runtime.hardware_blocks["layer3_2"].geometry
        # 16x16 input with two stride-2 stages -> 4x4 feature map, 16 channels.
        assert (geom.height, geom.width, geom.in_channels) == (4, 4, 16)

    def test_deterministic_predictions(self, small_model, batch):
        runtime = HwSwRuntime(small_model, Partition.offload("layer3_2"))
        logits1, _ = runtime.predict(batch)
        logits2, _ = runtime.predict(batch)
        np.testing.assert_allclose(logits1, logits2)

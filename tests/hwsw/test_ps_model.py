"""Tests for the PS software-execution-time model."""

from __future__ import annotations

import pytest

from repro.core import ExecutionTimeModel, layer_geometry
from repro.hwsw import PsModelConfig, SoftwareCostModel


class TestSoftwareCostModel:
    def test_zero_work_costs_nothing(self):
        assert SoftwareCostModel().work_time(0, 0, 0) == 0.0

    def test_time_linear_in_macs(self):
        model = SoftwareCostModel()
        assert model.work_time(2_000_000) == pytest.approx(2 * model.work_time(1_000_000))

    def test_elementwise_term(self):
        cfg = PsModelConfig(cycles_per_mac=0.0, cycles_per_element=10.0, clock_hz=1e6)
        model = SoftwareCostModel(cfg)
        assert model.work_time(0, elements=100, passes=2) == pytest.approx(2e-3)

    def test_describe_keys(self):
        d = SoftwareCostModel().describe()
        assert {"clock_mhz", "cycles_per_mac", "cycles_per_element", "per_image_overhead_s"} <= set(d)
        assert d["clock_mhz"] == pytest.approx(650.0)

    def test_per_image_overhead(self):
        assert SoftwareCostModel().per_image_overhead() == pytest.approx(0.028)


class TestCalibrationAgainstResNetTotals:
    """The model's ResNet-N totals must track the four published values."""

    @pytest.mark.parametrize(
        "depth,published", [(20, 0.54), (32, 0.89), (44, 1.24), (56, 1.58)]
    )
    def test_resnet_totals(self, depth, published):
        report = ExecutionTimeModel().report("ResNet", depth)
        assert report.total_without_pl == pytest.approx(published, rel=0.05)

    def test_per_block_software_times_match_table5_ratios(self):
        """Per-execution software times derived from Table 5:
        layer1 ≈ 61.6 ms, layer2_2 ≈ 55.4 ms, layer3_2 ≈ 57.5 ms."""

        model = ExecutionTimeModel()
        assert model.software_layer_seconds("layer1") == pytest.approx(0.0616, rel=0.05)
        assert model.software_layer_seconds("layer2_2") == pytest.approx(0.0554, rel=0.08)
        assert model.software_layer_seconds("layer3_2") == pytest.approx(0.0575, rel=0.05)

    def test_layer1_is_slowest_repeated_block_in_software(self):
        """layer1 has the most feature-map elements, so its software time is
        the largest of the three repeated blocks (as Table 5 implies)."""

        model = ExecutionTimeModel()
        t1 = model.software_layer_seconds("layer1")
        t22 = model.software_layer_seconds("layer2_2")
        t32 = model.software_layer_seconds("layer3_2")
        assert t1 > t32 > 0
        assert t1 > t22 > 0

    def test_downsample_blocks_cheaper(self):
        model = ExecutionTimeModel()
        assert model.software_layer_seconds("layer2_1") < model.software_layer_seconds("layer2_2")

    def test_faster_clock_reduces_time(self):
        slow = SoftwareCostModel(PsModelConfig(clock_hz=650e6))
        fast = SoftwareCostModel(PsModelConfig(clock_hz=1300e6))
        geom = layer_geometry("layer3_2")
        assert fast.block_time(geom.macs, geom.out_elements, 4) == pytest.approx(
            slow.block_time(geom.macs, geom.out_elements, 4) / 2
        )

"""Tests for the PS/PL partition description."""

from __future__ import annotations

import pytest

from repro.hwsw import Partition


class TestPartition:
    def test_software_only(self):
        p = Partition.software_only()
        assert p.pl_layers == ()
        assert all(v == "PS" for v in p.placement().values())

    def test_offload_single_layer(self):
        p = Partition.offload("layer3_2")
        assert p.runs_on_pl("layer3_2")
        assert not p.runs_on_pl("layer1")
        placement = p.placement()
        assert placement["layer3_2"] == "PL"
        assert placement["conv1"] == "PS"

    def test_offload_two_layers(self):
        p = Partition.offload("layer1", "layer2_2")
        assert p.runs_on_pl("layer1") and p.runs_on_pl("layer2_2")

    @pytest.mark.parametrize("bad", ["conv1", "layer2_1", "layer3_1", "fc", "layer9"])
    def test_non_offloadable_layers_rejected(self, bad):
        with pytest.raises(ValueError, match="cannot be offloaded"):
            Partition.offload(bad)

    def test_placement_covers_all_layers(self):
        placement = Partition.offload("layer1").placement()
        assert set(placement) == {"conv1", "layer1", "layer2_1", "layer2_2", "layer3_1", "layer3_2", "fc"}

    def test_frozen(self):
        p = Partition.offload("layer1")
        with pytest.raises(Exception):
            p.pl_layers = ("layer3_2",)  # type: ignore[misc]

"""End-to-end integration tests spanning multiple subsystems.

These exercise the full flow the paper describes: train a (reduced) rODENet
variant, offload its heavily-used ODEBlock to the simulated PL part, check
that the quantised hardware path preserves the prediction, and check that the
modelled execution time says the offload is worth it.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import OffloadPlanner, build_network
from repro.data import DataLoader, make_synthetic_cifar, train_test_split
from repro.hwsw import HwSwRuntime, Partition
from repro.nn import Tensor, accuracy, no_grad
from repro.train import PaperTrainingSchedule, Trainer, evaluate


@pytest.fixture(scope="module")
def trained_setup():
    """Train a reduced rODENet-3 on synthetic data (module-scoped: slow-ish)."""

    dataset = make_synthetic_cifar(
        num_samples=96, num_classes=4, image_size=16, channels=3, difficulty=0.3, seed=21
    )
    train_set, test_set = train_test_split(dataset, test_fraction=0.25, seed=1)
    model = build_network("rODENet-3", 20, num_classes=4, base_width=4, seed=5)
    schedule = PaperTrainingSchedule(epochs=4, base_lr=0.05, milestones=(3,), batch_size=24)
    trainer = Trainer(model, train_set, test_set, schedule=schedule, seed=2)
    history = trainer.fit()
    return model, train_set, test_set, history


class TestTrainOffloadPredict:
    def test_training_improves_over_initialisation(self, trained_setup):
        _, _, _, history = trained_setup
        assert history.improved()
        assert history.final.train_accuracy > 1.0 / 4 + 0.05  # beats chance

    def test_offloaded_inference_matches_software(self, trained_setup):
        model, _, test_set, _ = trained_setup
        runtime = HwSwRuntime(model, Partition.offload("layer3_2"), n_units=16)
        images = test_set.images[:4]
        fidelity = runtime.fidelity(images)
        assert fidelity["top1_agreement"] == 1.0
        assert fidelity["max_logit_diff"] < 0.1

    def test_offloaded_accuracy_matches_software_accuracy(self, trained_setup):
        model, _, test_set, _ = trained_setup
        runtime = HwSwRuntime(model, Partition.offload("layer3_2"), n_units=16)
        hw_logits, _ = runtime.predict(test_set.images)
        hw_acc = accuracy(hw_logits, test_set.labels)
        _, sw_acc = evaluate(model, test_set)
        assert hw_acc == pytest.approx(sw_acc, abs=0.05)

    def test_modeled_speedup_reported(self, trained_setup):
        model, _, test_set, _ = trained_setup
        runtime = HwSwRuntime(model, Partition.offload("layer3_2"), n_units=16)
        _, report = runtime.predict(test_set.images[:2])
        assert report.modeled_speedup > 1.5

    def test_offload_planner_agrees_with_runtime_targets(self, trained_setup):
        planner = OffloadPlanner()
        decision = planner.plan("rODENet-3", 20)
        assert decision.feasible
        assert decision.targets == ("layer3_2",)


class TestStateDictRoundTripAcrossSubsystems:
    def test_weights_survive_save_and_reload(self, trained_setup, tmp_path):
        model, _, test_set, _ = trained_setup
        state = model.state_dict()
        np.savez(tmp_path / "weights.npz", **state)

        loaded = dict(np.load(tmp_path / "weights.npz"))
        clone = build_network("rODENet-3", 20, num_classes=4, base_width=4, seed=99)
        clone.load_state_dict(loaded)
        clone.eval(), model.eval()
        with no_grad():
            x = Tensor(test_set.images[:4])
            np.testing.assert_allclose(model(x).data, clone(x).data, rtol=1e-10)


class TestAllVariantsSmallScale:
    @pytest.mark.parametrize(
        "variant", ["ResNet", "ODENet", "rODENet-1", "rODENet-2", "rODENet-1+2", "rODENet-3", "Hybrid-3"]
    )
    def test_every_variant_takes_a_training_step(self, variant, tiny_split):
        train_set, _ = tiny_split
        model = build_network(variant, 20, num_classes=train_set.num_classes, base_width=4, seed=0)
        loader = DataLoader(train_set, batch_size=16, shuffle=True, seed=0)
        images, labels = next(iter(loader))

        from repro.nn import SGD, CrossEntropyLoss

        optimizer = SGD(model.parameters(), lr=0.05, momentum=0.0, weight_decay=0.0)
        criterion = CrossEntropyLoss()
        model.train()
        first = criterion(model(Tensor(images)), labels)
        first.backward()
        optimizer.step()
        optimizer.zero_grad()
        second = criterion(model(Tensor(images)), labels)
        assert second.item() < first.item()

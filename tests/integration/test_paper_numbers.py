"""Single place that checks every quantitative claim reproduced from the paper.

Each test quotes the sentence or table cell it reproduces, so EXPERIMENTS.md
can point here as the machine-checked record of paper-vs-reproduction.
"""

from __future__ import annotations

import pytest

from repro.analysis import accuracy_model, figure5_series
from repro.core import (
    ExecutionTimeModel,
    parameter_reduction_percent,
    table2_structure,
    variant_spec,
)
from repro.fpga import (
    LAYER3_2,
    PAPER_LAYER3_2_CYCLES,
    PUBLISHED_TABLE3,
    ZYNQ_XC7Z020,
    OdeBlockCycleModel,
    ResourceEstimator,
    TimingModel,
)


class TestAbstractClaims:
    def test_overall_speedup_up_to_2_66x(self):
        """Abstract: "an overall execution time of an rODENet variant is
        improved by up to 2.66 times compared to a pure software execution"."""

        model = ExecutionTimeModel()
        best = max(
            model.report(name, depth).overall_speedup
            for name in ("rODENet-1", "rODENet-2", "rODENet-1+2", "rODENet-3")
            for depth in (20, 32, 44, 56)
        )
        assert best == pytest.approx(2.66, abs=0.06)

    def test_best_speedup_achieved_by_rodenet3_56(self):
        model = ExecutionTimeModel()
        report = model.report("rODENet-3", 56)
        assert report.overall_speedup == pytest.approx(2.66, abs=0.05)


class TestSection31Claims:
    def test_layer3_2_cycle_counts(self):
        """"their execution cycles of layer3_2 are 23.78M, 6.07M, 3.12M,
        1.64M, and 0.90M cycles"."""

        cycle_model = OdeBlockCycleModel()
        for n_units, published in PAPER_LAYER3_2_CYCLES.items():
            assert cycle_model.block_cycles(LAYER3_2, n_units).total == pytest.approx(
                published, rel=0.02
            )

    def test_conv_x32_fails_timing_conv_x16_passes(self):
        """"only conv_x32 could not satisfy a timing constraint ... (100MHz)"."""

        timing = TimingModel()
        assert timing.analyze(16).meets_timing
        assert not timing.analyze(32).meets_timing


class TestSection32Claims:
    def test_table3_bram_saturation_for_layer3_2(self):
        """"if we implement layer3_2 on PL part of the FPGA, BRAM utilization
        becomes 100%"."""

        for n in (1, 4, 8, 16):
            assert PUBLISHED_TABLE3[("layer3_2", n)].bram == ZYNQ_XC7Z020.bram36

    def test_four_offload_cases_feasible(self):
        """Section 3.2's four cases all fit the device per the resource model."""

        estimator = ResourceEstimator()
        assert estimator.estimate("layer1", 16).fits()
        assert estimator.estimate("layer2_2", 16).fits()
        assert estimator.estimate_combination(["layer1", "layer2_2"], 16).fits(ZYNQ_XC7Z020)
        assert estimator.estimate("layer3_2", 16).fits()


class TestSection42Claims:
    @pytest.mark.parametrize(
        "variant,depth,expected",
        [
            ("ODENet", 20, 36.24),
            ("rODENet-3", 20, 43.29),
            ("ODENet", 56, 79.54),
            ("rODENet-3", 56, 81.80),
            ("Hybrid-3", 20, 26.43),
            ("Hybrid-3", 56, 60.16),
        ],
    )
    def test_parameter_reductions(self, variant, depth, expected):
        assert parameter_reduction_percent(variant, depth) == pytest.approx(expected, abs=0.01)

    def test_table2_exact_kilobytes(self):
        expected = {
            "conv1": 1.86,
            "layer1": 19.84,
            "layer2_1": 55.81,
            "layer2_2": 76.54,
            "layer3_1": 222.21,
            "layer3_2": 300.54,
            "fc": 26.00,
        }
        for row in table2_structure():
            assert row.parameter_kilobytes == pytest.approx(expected[row.layer], abs=0.01)

    def test_parameter_size_independent_of_n_for_ode_variants(self):
        series = figure5_series()
        assert len({series["ODENet"][d] for d in (20, 32, 44, 56)}) == 1


class TestSection43Claims:
    def test_quoted_accuracies(self):
        assert accuracy_model("ResNet", 44).accuracy_percent == pytest.approx(70.74)
        assert accuracy_model("Hybrid-3", 44).accuracy_percent == pytest.approx(68.58)
        assert accuracy_model("rODENet-3", 20).accuracy_percent == pytest.approx(62.54)

    def test_accuracy_gaps(self):
        """5.48 / 5.70 point gaps for rODENet-3; 2.16 worst case for Hybrid-3."""

        gap20 = accuracy_model("ResNet", 20).accuracy_percent - accuracy_model("rODENet-3", 20).accuracy_percent
        gap32 = accuracy_model("ResNet", 32).accuracy_percent - accuracy_model("rODENet-3", 32).accuracy_percent
        assert gap20 == pytest.approx(5.48, abs=0.01)
        assert gap32 == pytest.approx(5.70, abs=0.01)


class TestSection44Claims:
    @pytest.fixture(scope="class")
    def model(self):
        return ExecutionTimeModel()

    def test_layer3_2_share_in_odenet3_and_hybrid3(self, model):
        """"execution time of layer3_2 takes up only 21.24% to 29.64% of total
        execution time of ODENet-3-N and Hybrid-3-N"."""

        ratios = [
            model.report(name, depth).target_ratio_percent[0]
            for name in ("ODENet-3", "Hybrid-3")
            for depth in (20, 32, 44, 56)
        ]
        assert min(ratios) > 18.0
        assert max(ratios) < 33.0

    def test_layer3_2_share_in_rodenet3(self, model):
        """"layer3_2 is heavily used intentionally in rODENet-3-N, and its
        execution time takes up 64.48% to 87.87%"."""

        ratios = [model.report("rODENet-3", d).target_ratio_percent[0] for d in (20, 32, 44, 56)]
        assert ratios[0] == pytest.approx(64.48, abs=4.0)
        assert ratios[-1] == pytest.approx(87.87, abs=3.0)

    def test_speedup_vs_software_resnet56(self, model):
        """"rODENet-3-56 is 2.67 times faster than a pure software execution of
        ResNet-56"."""

        assert model.speedup_vs_resnet("rODENet-3", 56) == pytest.approx(2.67, rel=0.05)

    def test_smallest_speedup_is_hybrid_3_20(self, model):
        """"the overall speedup by the FPGA is smallest in Hybrid-3-20"."""

        speedups = {
            (name, depth): model.report(name, depth).overall_speedup
            for name in ("rODENet-1", "rODENet-2", "rODENet-1+2", "rODENet-3", "ODENet-3", "Hybrid-3")
            for depth in (20, 32, 44, 56)
        }
        smallest = min(speedups, key=speedups.get)
        assert smallest[1] == 20
        assert smallest[0] in ("Hybrid-3", "ODENet-3")  # the two are within noise of each other

    def test_table4_rodenet3_structure(self):
        """rODENet-3 "heavily uses layer3_2, reduces layer1, eliminates layer2_2"."""

        spec = variant_spec("rODENet-3", 56)
        assert spec.plan("layer3_2").executions_per_block == 24
        assert spec.plan("layer1").total_executions == 1
        assert spec.plan("layer2_2").total_executions == 0

"""Tests for the mini-batch loader."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import DataLoader, make_synthetic_cifar


@pytest.fixture(scope="module")
def dataset():
    return make_synthetic_cifar(num_samples=50, num_classes=5, image_size=8, seed=0)


class TestDataLoader:
    def test_batch_shapes(self, dataset):
        loader = DataLoader(dataset, batch_size=16, shuffle=False)
        images, labels = next(iter(loader))
        assert images.shape == (16, 3, 8, 8)
        assert labels.shape == (16,)

    def test_len_with_and_without_drop_last(self, dataset):
        assert len(DataLoader(dataset, batch_size=16)) == 4
        assert len(DataLoader(dataset, batch_size=16, drop_last=True)) == 3

    def test_iterates_whole_dataset(self, dataset):
        loader = DataLoader(dataset, batch_size=16, shuffle=True)
        total = sum(len(labels) for _, labels in loader)
        assert total == 50

    def test_drop_last_discards_partial_batch(self, dataset):
        loader = DataLoader(dataset, batch_size=16, drop_last=True)
        sizes = [len(labels) for _, labels in loader]
        assert sizes == [16, 16, 16]

    def test_shuffle_changes_order_between_epochs(self, dataset):
        loader = DataLoader(dataset, batch_size=50, shuffle=True, seed=0)
        first = next(iter(loader))[1].copy()
        second = next(iter(loader))[1].copy()
        assert not np.array_equal(first, second)

    def test_no_shuffle_preserves_order(self, dataset):
        loader = DataLoader(dataset, batch_size=50, shuffle=False)
        _, labels = next(iter(loader))
        np.testing.assert_array_equal(labels, dataset.labels)

    def test_augmentation_changes_images(self, dataset):
        plain = DataLoader(dataset, batch_size=8, shuffle=False, augment=False)
        augmented = DataLoader(dataset, batch_size=8, shuffle=False, augment=True, seed=0)
        p_images, _ = next(iter(plain))
        a_images, _ = next(iter(augmented))
        assert not np.allclose(p_images, a_images)
        assert a_images.shape == p_images.shape

    def test_invalid_batch_size(self, dataset):
        with pytest.raises(ValueError):
            DataLoader(dataset, batch_size=0)

"""Tests for the CIFAR-100 loader and its synthetic fallback."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import cifar100_available, load_cifar100


class TestFallbackBehaviour:
    def test_not_available_in_clean_directory(self, tmp_path):
        assert not cifar100_available(tmp_path)

    def test_fallback_dataset_shape(self, tmp_path):
        ds = load_cifar100(root=tmp_path, split="train", fallback_samples=120)
        assert ds.images.shape == (120, 3, 32, 32)
        assert ds.num_classes == 100
        assert ds.name.startswith("synthetic-cifar100")

    def test_train_and_test_fallbacks_differ(self, tmp_path):
        train = load_cifar100(root=tmp_path, split="train", fallback_samples=100)
        test = load_cifar100(root=tmp_path, split="test", fallback_samples=100)
        assert not np.allclose(train.images, test.images)

    def test_invalid_split_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            load_cifar100(root=tmp_path, split="validation")


class TestRealLoaderPath:
    def test_loads_pickled_cifar_format(self, tmp_path):
        """When the official pickle files exist they are parsed correctly."""

        import pickle

        base = tmp_path / "cifar-100-python"
        base.mkdir()
        rng = np.random.default_rng(0)
        for split, n in (("train", 20), ("test", 10)):
            payload = {
                "data": rng.integers(0, 256, size=(n, 3072), dtype=np.int64),
                "fine_labels": rng.integers(0, 100, size=n).tolist(),
            }
            with open(base / split, "wb") as handle:
                pickle.dump(payload, handle)

        assert cifar100_available(tmp_path)
        ds = load_cifar100(root=tmp_path, split="train")
        assert ds.name == "cifar100-train"
        assert ds.images.shape == (20, 3, 32, 32)
        # Images are normalised: values should be roughly centred.
        assert abs(ds.images.mean()) < 2.0
        test = load_cifar100(root=tmp_path, split="test")
        assert len(test) == 10

"""Tests for the synthetic CIFAR-100 substitute."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import make_synthetic_cifar, train_test_split


class TestGenerator:
    def test_shapes_and_dtypes(self):
        ds = make_synthetic_cifar(num_samples=50, num_classes=10, image_size=16, seed=0)
        assert ds.images.shape == (50, 3, 16, 16)
        assert ds.labels.shape == (50,)
        assert ds.labels.dtype == np.int64
        assert ds.num_classes == 10
        assert ds.image_shape == (3, 16, 16)
        assert len(ds) == 50

    def test_deterministic_for_same_seed(self):
        a = make_synthetic_cifar(num_samples=20, num_classes=4, image_size=8, seed=5)
        b = make_synthetic_cifar(num_samples=20, num_classes=4, image_size=8, seed=5)
        np.testing.assert_array_equal(a.images, b.images)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_different_seeds_differ(self):
        a = make_synthetic_cifar(num_samples=20, num_classes=4, image_size=8, seed=1)
        b = make_synthetic_cifar(num_samples=20, num_classes=4, image_size=8, seed=2)
        assert not np.allclose(a.images, b.images)

    def test_all_classes_present(self):
        ds = make_synthetic_cifar(num_samples=100, num_classes=10, image_size=8, seed=0)
        assert set(np.unique(ds.labels)) == set(range(10))
        counts = ds.class_counts()
        assert counts.sum() == 100
        assert counts.min() >= 100 // 10

    def test_too_few_samples_rejected(self):
        with pytest.raises(ValueError):
            make_synthetic_cifar(num_samples=3, num_classes=10)

    def test_getitem_and_subset(self):
        ds = make_synthetic_cifar(num_samples=30, num_classes=3, image_size=8, seed=0)
        image, label = ds[5]
        assert image.shape == (3, 8, 8)
        assert isinstance(label, int)
        sub = ds.subset([0, 1, 2])
        assert len(sub) == 3

    def test_classes_are_separable(self):
        """Nearest-prototype classification on clean data beats chance by far —
        i.e. the synthetic task is actually learnable."""

        ds = make_synthetic_cifar(num_samples=200, num_classes=5, image_size=16, difficulty=0.3, seed=0)
        # Compute per-class mean images and classify by nearest mean.
        means = np.stack([ds.images[ds.labels == c].mean(axis=0) for c in range(5)])
        flat = ds.images.reshape(len(ds), -1)
        distances = ((flat[:, None, :] - means.reshape(5, -1)[None]) ** 2).sum(axis=2)
        predictions = distances.argmin(axis=1)
        accuracy = (predictions == ds.labels).mean()
        assert accuracy > 0.8

    def test_higher_difficulty_is_noisier(self):
        easy = make_synthetic_cifar(num_samples=50, num_classes=5, image_size=8, difficulty=0.1, seed=0)
        hard = make_synthetic_cifar(num_samples=50, num_classes=5, image_size=8, difficulty=2.0, seed=0)
        assert hard.images.std() > easy.images.std()

    @given(st.integers(2, 8), st.integers(8, 32))
    @settings(max_examples=10, deadline=None)
    def test_arbitrary_configurations(self, num_classes, num_samples):
        if num_samples < num_classes:
            return
        ds = make_synthetic_cifar(num_samples=num_samples, num_classes=num_classes, image_size=8, seed=0)
        assert len(ds) == num_samples
        assert ds.labels.max() < num_classes


class TestTrainTestSplit:
    def test_split_sizes(self):
        ds = make_synthetic_cifar(num_samples=100, num_classes=5, image_size=8, seed=0)
        train, test = train_test_split(ds, test_fraction=0.2, seed=1)
        assert len(train) == 80 and len(test) == 20

    def test_split_disjoint_and_complete(self):
        ds = make_synthetic_cifar(num_samples=40, num_classes=4, image_size=8, seed=0)
        # Tag each image with a unique value to detect overlaps.
        ds.images[:, 0, 0, 0] = np.arange(40)
        train, test = train_test_split(ds, test_fraction=0.25, seed=2)
        train_ids = set(train.images[:, 0, 0, 0].astype(int))
        test_ids = set(test.images[:, 0, 0, 0].astype(int))
        assert train_ids.isdisjoint(test_ids)
        assert len(train_ids | test_ids) == 40

    def test_invalid_fraction(self):
        ds = make_synthetic_cifar(num_samples=10, num_classes=2, image_size=8, seed=0)
        with pytest.raises(ValueError):
            train_test_split(ds, test_fraction=0.0)
        with pytest.raises(ValueError):
            train_test_split(ds, test_fraction=1.0)

"""Tests for the CIFAR-style augmentation pipeline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import random_crop, random_horizontal_flip, standard_cifar_augment


@pytest.fixture
def images(rng):
    return rng.normal(size=(8, 3, 16, 16))


class TestRandomCrop:
    def test_shape_preserved(self, images, rng):
        out = random_crop(images, padding=2, rng=rng)
        assert out.shape == images.shape

    def test_zero_padding_visible_at_edges(self, rng):
        ones = np.ones((4, 1, 8, 8))
        out = random_crop(ones, padding=4, rng=np.random.default_rng(0))
        # With 4-pixel padding on an 8-pixel image, most crops include zeros.
        assert out.min() == 0.0

    def test_deterministic_with_seed(self, images):
        a = random_crop(images, rng=np.random.default_rng(3))
        b = random_crop(images, rng=np.random.default_rng(3))
        np.testing.assert_array_equal(a, b)

    def test_content_preserved_as_subwindow(self, rng):
        """Every cropped image is a sub-window of the padded original."""

        image = rng.normal(size=(1, 1, 6, 6))
        out = random_crop(image, padding=1, rng=np.random.default_rng(1))
        padded = np.pad(image, ((0, 0), (0, 0), (1, 1), (1, 1)))
        found = any(
            np.allclose(out[0, 0], padded[0, 0, i : i + 6, j : j + 6])
            for i in range(3)
            for j in range(3)
        )
        assert found


class TestRandomFlip:
    def test_probability_zero_is_identity(self, images, rng):
        np.testing.assert_array_equal(random_horizontal_flip(images, 0.0, rng), images)

    def test_probability_one_flips_everything(self, images, rng):
        out = random_horizontal_flip(images, 1.0, rng)
        np.testing.assert_array_equal(out, images[:, :, :, ::-1])

    def test_double_flip_is_identity(self, images):
        flipped = random_horizontal_flip(images, 1.0, np.random.default_rng(0))
        back = random_horizontal_flip(flipped, 1.0, np.random.default_rng(0))
        np.testing.assert_array_equal(back, images)

    def test_original_not_modified(self, images, rng):
        snapshot = images.copy()
        random_horizontal_flip(images, 0.5, rng)
        np.testing.assert_array_equal(images, snapshot)


class TestStandardAugment:
    def test_shape_and_determinism(self, images):
        a = standard_cifar_augment(images, rng=np.random.default_rng(7))
        b = standard_cifar_augment(images, rng=np.random.default_rng(7))
        assert a.shape == images.shape
        np.testing.assert_array_equal(a, b)

    def test_statistics_roughly_preserved(self, rng):
        images = rng.normal(size=(64, 3, 16, 16))
        out = standard_cifar_augment(images, rng=rng, padding=2)
        # Zero padding pulls the mean toward zero slightly but the overall
        # scale must remain comparable.
        assert out.std() == pytest.approx(images.std(), rel=0.25)

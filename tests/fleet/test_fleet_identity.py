"""Fleet conformance: fleet-of-one identity and shard-count invariance.

The two contracts that make the fleet layer trustworthy:

* a single-board fleet at ``fidelity="event"`` with admission off is
  *exactly* one ``repro.sim.simulate`` run — same latency distribution,
  same energy ledger, bit for bit;
* ``shards`` is an execution knob, never a scenario knob — any shard count
  yields a bit-identical merged report.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.fleet import (
    BoardGroup,
    FleetScenario,
    TrafficClass,
    run_cell,
    simulate_fleet,
)
from repro.sim import SimScenario, simulate


def _trace(seed: int = 5, n: int = 120, span: float = 15.0) -> tuple:
    rng = np.random.default_rng(seed)
    return tuple(np.sort(rng.uniform(0.0, span, n)))


class TestFleetOfOneIdentity:
    def test_event_fidelity_reproduces_simulate(self):
        trace = _trace()
        fleet = FleetScenario(
            boards=(BoardGroup("PYNQ-Z2", 1),),
            classes=(TrafficClass("only"),),
            arrival="trace",
            trace=trace,
            seed=11,
            fidelity="event",
            admission="none",
            exact=True,
            replicas=2,
        )
        fleet_report = simulate_fleet(fleet)
        single = SimScenario(
            board="PYNQ-Z2",
            arrival="trace",
            trace=trace,
            seed=11,
            replicas=2,
            exact=True,
            ps_cores=0,
        )
        sim_report = simulate(single)

        # The merged distribution is the board's distribution, bit for bit.
        assert fleet_report.latency == sim_report.latency
        assert fleet_report.wait == sim_report.wait
        assert fleet_report.requests["completed"] == sim_report.requests["completed"]
        assert fleet_report.requests["rejected"] == 0

        # And the embedded board report is the SimReport itself.
        assert fleet_report.board_reports is not None
        assert len(fleet_report.board_reports) == 1
        board = fleet_report.board_reports[0]
        expected = sim_report.as_dict()
        assert board["latency"] == expected["latency"]
        assert board["energy"] == expected["energy"]
        assert board["requests"] == expected["requests"]

    def test_event_fidelity_carries_slo_through(self):
        trace = _trace(seed=9, n=60, span=5.0)
        fleet = FleetScenario(
            boards=(BoardGroup("PYNQ-Z2", 1),),
            arrival="trace",
            trace=trace,
            fidelity="event",
            admission="none",
            slo_s=0.001,  # impossible SLO: every completion violates
            exact=True,
        )
        report = simulate_fleet(fleet)
        assert report.classes[0]["violations"] == report.requests["completed"]

    def test_event_fidelity_requires_single_class(self):
        with pytest.raises(ValueError, match="exactly one traffic class"):
            FleetScenario(
                classes=(TrafficClass("a"), TrafficClass("b")),
                fidelity="event",
            )


class TestShardInvariance:
    @pytest.fixture(scope="class")
    def scenario(self) -> FleetScenario:
        return FleetScenario(
            boards=(BoardGroup("PYNQ-Z2", 3), BoardGroup("ZCU104", 2)),
            classes=(
                TrafficClass("interactive", weight=0.7),
                TrafficClass("bulk", weight=0.3, kind="batch"),
            ),
            arrival_rate_hz=30.0,
            n_requests=1200,
            cells=4,
            seed=7,
            autoscale=True,
            autoscale_interval_s=5.0,
        )

    def test_shards_never_change_the_numbers(self, scenario):
        r1 = simulate_fleet(scenario, shards=1)
        r4 = simulate_fleet(scenario, shards=4)
        d1, d4 = r1.as_dict(), r4.as_dict()
        assert d1.pop("shards") == 1
        assert d4.pop("shards") == 4
        assert json.dumps(d1, sort_keys=True) == json.dumps(d4, sort_keys=True)

    def test_cells_are_seeded_by_index_not_execution_order(self, scenario):
        # Run the cells out of order: each must produce its own stream.
        forward = [run_cell(scenario, c) for c in range(scenario.cells)]
        backward = [run_cell(scenario, c) for c in reversed(range(scenario.cells))]
        by_cell = {r.cell: r for r in backward}
        for r in forward:
            assert by_cell[r.cell].offered == r.offered
            assert by_cell[r.cell].completed == r.completed
            assert by_cell[r.cell].horizon_s == r.horizon_s

    def test_cells_change_the_numbers(self, scenario):
        # cells is a scenario knob: dealing the same inventory into a
        # different partition serves different requests on different boards.
        merged = simulate_fleet(scenario)
        single_cell = simulate_fleet(scenario.replace(cells=1))
        assert merged.as_dict()["requests"] != single_cell.as_dict()["requests"] or (
            merged.latency != single_cell.latency
        )

    def test_excess_shards_are_harmless(self, scenario):
        r = simulate_fleet(scenario, shards=16)
        assert r.requests["offered"] == 1200


class TestRequestConservation:
    def test_offered_splits_exactly_across_cells(self):
        scenario = FleetScenario(
            boards=(BoardGroup("PYNQ-Z2", 5),),
            n_requests=1003,
            cells=5,
            admission="none",
        )
        report = simulate_fleet(scenario)
        assert report.requests["offered"] == 1003
        assert report.requests["completed"] + report.requests["rejected"] == 1003

    def test_fast_fidelity_batch_never_rejected(self):
        scenario = FleetScenario(
            boards=(BoardGroup("PYNQ-Z2", 1),),
            classes=(TrafficClass("bulk", kind="batch"),),
            arrival_rate_hz=100.0,
            n_requests=500,
            admission="slo",
            seed=4,
        )
        report = simulate_fleet(scenario)
        assert report.requests["rejected"] == 0
        assert report.requests["completed"] == 500

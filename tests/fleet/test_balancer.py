"""Unit tests of the balancer tier: routing, admission inputs, board ledgers."""

from __future__ import annotations

import math

import pytest

from repro.fleet import BATCH_SPILL_FACTOR, Balancer, BoardServer


def make_board(
    index: int = 0,
    group: int = 0,
    name: str = "PYNQ-Z2",
    replicas: int = 1,
    svc_s=(1.0,),
    ps_s=(0.1,),
    pl_w: float = 2.0,
    ps_active_w: float = 1.3,
    ps_idle_w: float = 0.3,
) -> BoardServer:
    return BoardServer(
        index=index,
        group=group,
        name=name,
        replicas=replicas,
        svc_s=svc_s,
        ps_s=ps_s,
        pl_w=pl_w,
        ps_active_w=ps_active_w,
        ps_idle_w=ps_idle_w,
    )


class TestBoardServer:
    def test_assign_is_fifo_per_slot(self):
        b = make_board(replicas=2, svc_s=(1.0,))
        s0 = b.assign(0.0, 0)
        s1 = b.assign(0.0, 0)
        s2 = b.assign(0.0, 0)  # both slots busy: queues behind the first
        assert s0 == (0.0, 1.0)
        assert s1 == (0.0, 1.0)
        assert s2 == (1.0, 2.0)
        assert b.busy_seconds == 3.0
        assert b.served == [3]

    def test_predicted_start_respects_boot_delay(self):
        b = make_board()
        b.power_down(0.0)
        b.power_up(10.0, boot_s=5.0)
        assert b.predicted_start(11.0) == 15.0
        start, finish = b.assign(11.0, 0)
        assert (start, finish) == (15.0, 16.0)

    def test_power_ledger_closes_at_drain(self):
        b = make_board(svc_s=(4.0,))
        b.assign(1.0, 0)  # busy until 5.0
        drained = b.power_down(2.0)
        assert drained == 5.0
        assert b.powered_seconds == 5.0
        assert not b.powered
        assert math.isinf(b.predicted_start(3.0))

    def test_energy_splits_ps_active_idle(self):
        b = make_board(svc_s=(2.0,), ps_s=(0.5,), pl_w=2.0, ps_active_w=1.0, ps_idle_w=0.2)
        b.assign(0.0, 0)
        b.finalize(10.0)
        e = b.energy_j()
        assert e["pl_energy_J"] == pytest.approx(2.0 * 10.0)
        assert e["ps_energy_J"] == pytest.approx(1.0 * 0.5 + 0.2 * 9.5)
        assert e["total_energy_J"] == pytest.approx(e["pl_energy_J"] + e["ps_energy_J"])

    def test_utilization_nan_when_never_powered(self):
        b = make_board()
        assert math.isnan(b.utilization())  # ledger never closed

    def test_finalize_without_traffic_counts_idle_power(self):
        b = make_board(pl_w=3.0, ps_idle_w=0.5)
        b.finalize(4.0)
        assert b.powered_seconds == 4.0
        assert b.energy_j()["total_energy_J"] == pytest.approx(3.0 * 4.0 + 0.5 * 4.0)


class TestRouting:
    def test_least_loaded_picks_earliest_start(self):
        slow = make_board(index=0, svc_s=(5.0,))
        fast = make_board(index=1, svc_s=(1.0,))
        bal = Balancer([slow, fast], "least_loaded")
        first = bal.route(0.0, 0, "latency")
        first.assign(0.0, 0)
        # Inventory-order tie-break sent the first request to board 0; the
        # second must go to the idle board 1.
        assert first is slow
        assert bal.route(0.0, 0, "latency") is fast

    def test_latency_skips_unpowered_boards(self):
        a = make_board(index=0)
        b = make_board(index=1)
        a.power_down(0.0)
        bal = Balancer([a, b], "least_loaded")
        assert bal.route(0.0, 0, "latency") is b
        b.power_down(0.0)
        assert bal.route(0.0, 0, "latency") is None

    def test_batch_packs_cheapest_board(self):
        expensive = make_board(index=0, svc_s=(1.0,), pl_w=10.0)
        cheap = make_board(index=1, svc_s=(1.0,), pl_w=1.0)
        bal = Balancer([expensive, cheap], "least_loaded")
        assert bal.route(0.0, 0, "batch") is cheap

    def test_batch_spills_when_cheapest_backlogged(self):
        expensive = make_board(index=0, svc_s=(1.0,), pl_w=10.0)
        cheap = make_board(index=1, svc_s=(1.0,), pl_w=1.0)
        bal = Balancer([expensive, cheap], "least_loaded")
        # Pack the cheap board past the spill threshold.
        for _ in range(int(BATCH_SPILL_FACTOR) + 2):
            cheap.assign(0.0, 0)
        assert bal.route(0.0, 0, "batch") is expensive

    def test_round_robin_rotates_over_powered(self):
        boards = [make_board(index=i) for i in range(3)]
        boards[1].power_down(0.0)
        bal = Balancer(boards, "round_robin")
        picks = [bal.route(0.0, 0, "latency").index for _ in range(4)]
        assert picks == [0, 2, 0, 2]

    def test_weighted_is_capacity_proportional(self):
        small = make_board(index=0, replicas=1, svc_s=(1.0,))
        big = make_board(index=1, replicas=3, svc_s=(1.0,))
        bal = Balancer([small, big], "weighted")
        # Capacity 1 vs 3: u below 0.25 lands on the small board.
        assert bal.route(0.0, 0, "latency", u=0.1) is small
        assert bal.route(0.0, 0, "latency", u=0.9) is big

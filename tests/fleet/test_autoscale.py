"""Unit tests of the reactive autoscaler: bands, ordering, power accounting."""

from __future__ import annotations

import pytest

from repro.fleet import (
    AutoscaleController,
    AutoscalePolicy,
    BoardGroup,
    BoardServer,
    FleetScenario,
    simulate_fleet,
)


def make_board(index: int = 0) -> BoardServer:
    return BoardServer(
        index=index, group=0, name="PYNQ-Z2", replicas=1,
        svc_s=(1.0,), ps_s=(0.1,), pl_w=2.0, ps_active_w=1.3, ps_idle_w=0.3,
    )


def controller(n_boards: int = 3, **policy_knobs) -> AutoscaleController:
    policy = AutoscalePolicy(**{"interval_s": 10.0, **policy_knobs})
    boards = [make_board(index=i) for i in range(n_boards)]
    return AutoscaleController(boards, policy)


class TestPolicyValidation:
    def test_bands_must_be_ordered(self):
        with pytest.raises(ValueError, match="bands"):
            AutoscalePolicy(high=0.3, low=0.75)

    def test_interval_positive(self):
        with pytest.raises(ValueError, match="interval"):
            AutoscalePolicy(interval_s=0.0)

    def test_min_powered_positive(self):
        with pytest.raises(ValueError, match="min_powered"):
            AutoscalePolicy(min_powered=0)


class TestController:
    def test_cold_window_powers_down_last_board(self):
        ctl = controller()
        ctl.tick(10.0)  # zero busy seconds: utilisation 0 < low
        assert ctl.powered_count == 2
        assert ctl.events[-1]["action"] == "down"
        assert ctl.events[-1]["board"] == 2  # last in inventory order
        assert not ctl.boards[2].powered

    def test_never_scales_below_min_powered(self):
        ctl = controller(min_powered=2)
        for t in (10.0, 20.0, 30.0, 40.0):
            ctl.tick(t)
        assert ctl.powered_count == 2

    def test_hot_window_powers_up_first_unpowered(self):
        ctl = controller()
        ctl.boards[0].power_down(0.0)
        ctl.boards[1].power_down(0.0)
        # Saturate the one powered board's window.
        for _ in range(12):
            ctl.boards[2].assign(0.0, 0)
        ctl.tick(10.0)
        assert ctl.events[-1]["action"] == "up"
        assert ctl.events[-1]["board"] == 0  # first unpowered in inventory order
        assert ctl.boards[0].powered

    def test_window_is_differential_not_cumulative(self):
        ctl = controller(n_boards=1, min_powered=1)
        for _ in range(12):
            ctl.boards[0].assign(0.0, 0)
        ctl.tick(10.0)  # hot window (nothing to power up — sole board)
        ctl.tick(20.0)  # the same busy seconds must not count twice
        assert ctl._last_busy == ctl.boards[0].busy_seconds
        ups = [e for e in ctl.events if e["action"] == "up"]
        assert not ups

    def test_summary_counts(self):
        ctl = controller()
        ctl.tick(10.0)
        ctl.tick(20.0)
        s = ctl.summary()
        assert s["power_downs"] == 2
        assert s["power_ups"] == 0
        assert s["final_powered"] == 1
        assert s["events"] == 2


class TestAutoscaleEndToEnd:
    def test_idle_fleet_scales_to_min_powered(self):
        report = simulate_fleet(
            FleetScenario(
                boards=(BoardGroup("PYNQ-Z2", 4),),
                arrival_rate_hz=0.2,
                duration_s=400.0,
                admission="none",
                autoscale=True,
                autoscale_interval_s=10.0,
                seed=1,
            )
        )
        assert report.autoscale is not None
        assert report.autoscale["power_downs"] >= 3
        assert report.autoscale["final_powered"] >= 1
        # Powered fraction strictly below 1: idle boards were switched off.
        assert report.boards[0]["powered_fraction"] < 1.0

    def test_autoscale_saves_energy_at_low_load(self):
        base = FleetScenario(
            boards=(BoardGroup("PYNQ-Z2", 4),),
            arrival_rate_hz=0.2,
            duration_s=400.0,
            admission="none",
            seed=1,
        )
        static = simulate_fleet(base)
        scaled = simulate_fleet(base.replace(autoscale=True, autoscale_interval_s=10.0))
        assert scaled.energy["total_energy_J"] < static.energy["total_energy_J"]

    def test_autoscale_requires_fast_fidelity(self):
        with pytest.raises(ValueError, match="fidelity='fast'"):
            FleetScenario(autoscale=True, fidelity="event")

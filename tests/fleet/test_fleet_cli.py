"""Tests of the ``fleet`` CLI subcommand: sections, JSON schema, parse errors."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.fleet import parse_board_groups, parse_traffic_classes


def run_cli(capsys, *argv) -> str:
    assert main(list(argv)) == 0
    return capsys.readouterr().out


BASE = (
    "fleet", "--boards", "pynq-z2:2,zcu104:1", "--rate", "20",
    "--requests", "300", "--seed", "3",
)


class TestFleetCommand:
    def test_table_output_has_sections(self, capsys):
        out = run_cli(capsys, *BASE)
        for token in (
            "[requests]", "[latency]", "[classes]", "[boards]", "[energy]",
            "[reproducibility]", "[engine]",
        ):
            assert token in out
        assert "2x PYNQ-Z2" in out
        assert "1x ZCU104" in out

    def test_json_output_schema(self, capsys):
        out = run_cli(capsys, *BASE, "--classes",
                      "interactive:0.8:latency:900ms,nightly:0.2:batch",
                      "--cells", "3", "--shards", "2", "--json")
        payload = json.loads(out)
        for key in (
            "scenario", "requests", "horizon_s", "throughput_rps", "latency",
            "wait", "classes", "boards", "energy", "cells", "shards",
            "events_processed",
        ):
            assert key in payload
        assert payload["cells"] == 3
        assert payload["shards"] == 2
        assert payload["requests"]["offered"] == 300
        assert (
            payload["requests"]["completed"] + payload["requests"]["rejected"] == 300
        )
        names = [c["name"] for c in payload["classes"]]
        assert names == ["interactive", "nightly"]
        assert payload["classes"][0]["slo_s"] == pytest.approx(0.9)
        assert payload["classes"][1]["kind"] == "batch"
        boards = {b["board"]: b for b in payload["boards"]}
        assert boards["PYNQ-Z2"]["count"] == 2
        assert boards["ZCU104"]["count"] == 1
        for key in ("ps_energy_J", "pl_energy_J", "total_energy_J"):
            assert payload["energy"][key] >= 0.0

    def test_format_json_equals_global_json(self, capsys):
        args = list(BASE)
        a = run_cli(capsys, *args, "--format", "json")
        b = run_cli(capsys, *args, "--json")
        assert json.loads(a) == json.loads(b)

    def test_autoscale_section_appears(self, capsys):
        out = run_cli(
            capsys, "fleet", "--boards", "pynq-z2:3", "--rate", "0.5",
            "--duration", "200", "--admission", "none", "--autoscale",
            "--autoscale-interval", "10",
        )
        assert "[autoscale]" in out
        assert "power-ups" in out


class TestFleetCliErrors:
    @pytest.mark.parametrize(
        "argv",
        [
            ("fleet", "--boards", "bogus:2"),
            ("fleet", "--boards", "pynq-z2:x"),
            ("fleet", "--boards", "pynq-z2", "--classes", "a:b"),
            ("fleet", "--boards", "pynq-z2", "--classes", "a:1:weird"),
            ("fleet", "--boards", "pynq-z2", "--replicas", "lots"),
            ("fleet", "--boards", "pynq-z2:2", "--cells", "3"),
            ("fleet", "--boards", "pynq-z2", "--rate", "-1"),
        ],
    )
    def test_bad_input_exits_2(self, capsys, argv):
        assert main(list(argv)) == 2
        err = capsys.readouterr().err
        assert "error:" in err


class TestParsers:
    def test_board_parser_counts_and_case(self):
        groups = parse_board_groups("pynq-z2:8, ZCU104:4,ultra96-v2")
        assert [(g.board, g.count) for g in groups] == [
            ("PYNQ-Z2", 8), ("ZCU104", 4), ("Ultra96-V2", 1),
        ]

    def test_class_parser_full_spec(self):
        classes = parse_traffic_classes("interactive:0.8:latency:50ms,nightly:0.2:batch")
        assert classes[0].name == "interactive"
        assert classes[0].slo_s == pytest.approx(0.05)
        assert classes[1].kind == "batch"
        assert classes[1].slo_s is None

    def test_class_parser_seconds(self):
        (cls,) = parse_traffic_classes("rt:1:latency:0.25")
        assert cls.slo_s == pytest.approx(0.25)

    def test_empty_specs_rejected(self):
        with pytest.raises(ValueError):
            parse_board_groups("  , ")
        with pytest.raises(ValueError):
            parse_traffic_classes(",")
